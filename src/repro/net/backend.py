"""NetBackend — the third runtime backend: learners and PS shards are
separate OS processes talking TCP, discovered through a cluster spec.

The same trainer coroutines that run in virtual time on ``SimBackend`` and
over shared memory on ``MPBackend`` run here against real sockets:

* **Collectives** are a TCP ring: each rank holds one connection to its
  successor and one from its predecessor (established lazily from the
  cluster spec at the first collective call).  Allreduce is the classic
  chunked ring (p−1 reduce-scatter steps + p−1 allgather steps, tensors
  framed zero-copy); broadcast forwards hop by hop; object allgather
  rotates pickled items around the ring.
* **Parameter server** shards are separate processes, each exclusively
  owning a contiguous slice and serving framed push/pull/elastic requests
  in genuine arrival order with the same per-rank seq-dedupe cache as the
  mp shards — so the retry protocol (same-seq resend with backoff, stale
  reply discard, typed :class:`RetryBudgetExhausted`) rides on real
  connections.
* **Supervision** is connection-loss based: every worker holds a control
  connection to the coordinator and heartbeats on it; the coordinator
  declares a rank dead when its control connection drops without a RESULT
  frame (TCP reset/EOF — milliseconds after a kill), its process exits
  before ever connecting, or its heartbeat goes stale (wedged-but-alive,
  or remote hosts where no process handle exists).
* **Fault injection**: planned crashes are a real ``os._exit`` (detected
  as above); stragglers really sleep; ``drop``/``delay`` are frame-level —
  an injected drop consumes a genuine PS_REP frame off the wire and drives
  the real resend machinery, with the same seeded, deterministic counts as
  the other backends.

Two modes share all of the above:

* ``fork`` (default, used by ``repro run --backend net``): the parent
  pre-binds every listener on loopback ephemeral ports (race-free), forks
  shard and worker processes that inherit the constructed trainer and
  their own listening socket, and coordinates in-process.  Elastic
  recovery works exactly as on mp (respawn = a fresh backend with fresh
  ports).
* ``coordinator``/``worker`` (driven by ``repro launch``): processes are
  launched separately — same host or not — and find each other purely
  through ``REPRO_CLUSTER_SPEC``; PS shards bootstrap their slice from the
  coordinator's WELCOME frame.  See :mod:`repro.net.launch`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import threading
import time
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..faults.plan import FaultPlan, RetryPolicy, _hash_uniform
from ..obs import events as _events
from ..ps.server import ShardLayout
from ..sim.trace import Span
from ..runtime.api import (
    Backend,
    BackendCapabilityError,
    Collective,
    LearnerFailure,
    ParameterServerHandle,
    PSClientLike,
    RetryBudgetExhausted,
    RunStats,
    blocking,
)
from .cluster import ClusterSpec, allocate_loopback, close_all
from .frames import (
    DATA,
    ERROR,
    EVENT,
    HEARTBEAT,
    HELLO,
    PS_REP,
    PS_REQ,
    RESULT,
    RESUME,
    RESUME_OK,
    STATS,
    STOP,
    WELCOME,
    Conn,
    ConnectionLost,
    ProtocolError,
    SessionConn,
    SessionUnrecoverable,
    bind_listener,
    connect,
)

__all__ = ["NetBackend", "NetCollective", "NetParameterServer", "run_ps_role"]

_JOIN_GRACE = 5.0        # seconds to wait for an already-signalled process
_DEAD_GRACE = 1.0        # drain grace once every awaited rank is known dead
_CRASH_EXIT = 3          # exit code of a plan-crashed learner
_PS_CRASH_EXIT = 4       # exit code of a plan-crashed parameter-server shard
_HEARTBEAT_PERIOD = 0.25  # default worker → coordinator liveness interval
_STALE_AFTER = 5.0       # default heartbeat silence that counts as death
_RECONNECT_DEADLINE = 10.0  # default resume window under recovery=reconnect
_POLL = 0.1              # monitor poll interval


def _noop() -> None:
    return None


def _peer_rank(peer: str) -> Optional[int]:
    """``"learner3"`` → 3 (None for non-learner peers)."""
    if peer.startswith("learner") and peer[7:].isdigit():
        return int(peer[7:])
    return None


class NetCollective(Collective):
    """Chunked ring allreduce / hop-forward broadcast / rotation allgather
    over two TCP connections per rank (successor out, predecessor in).

    Connections are strictly ordered streams, so rounds cannot cross-talk:
    a fast peer's next-round frame simply queues behind the current one.
    A dead ring neighbour surfaces as :class:`ConnectionLost` on the next
    send/recv and is rethrown as a typed :class:`LearnerFailure` naming it.
    """

    def __init__(self, p: int, timeout: float) -> None:
        self.p = p
        self.timeout = timeout
        self.bytes_moved = 0.0  # per-process accumulator after fork
        self._spec: Optional[ClusterSpec] = None
        self._listeners: Dict[int, Optional[socket.socket]] = {}
        self._rank: Optional[int] = None
        self._next = None  # Conn, or SessionConn under recovery=reconnect
        self._prev = None
        self._session: Optional[str] = None
        self._resume_deadline = _RECONNECT_DEADLINE
        self._resume_retry = RetryPolicy()
        self._resume_seed = 0
        self._resumes = 0  # per-session resume budget consumed (both links)

    def install(self, spec: ClusterSpec,
                listeners: Dict[int, socket.socket]) -> None:
        """Attach the address book (and, in fork mode, the pre-bound
        listeners the children inherit).  Runs in the parent, pre-fork."""
        self._spec = spec
        self._listeners = dict(listeners)

    def configure_resume(self, session: str, deadline: float,
                         retry: RetryPolicy, seed: int) -> None:
        """Enable session-resumable ring links (recovery=reconnect).

        Must run before :meth:`_setup` joins the ring — the links are
        wrapped in :class:`SessionConn` so seq numbering and the replay
        buffer survive socket replacement.
        """
        self._session = session
        self._resume_deadline = deadline
        self._resume_retry = retry
        self._resume_seed = seed

    def _setup(self, rank: int) -> None:
        """Join the ring (first collective call in this process only)."""
        if self._next is not None:
            return
        self._rank = rank
        listener = self._listeners.get(rank)
        if listener is None:
            # external mode: bind our own spec address (fixed port)
            listener = bind_listener(self._spec.workers[rank])
            self._listeners[rank] = listener
        succ = (rank + 1) % self.p
        # connect-then-accept is deadlock-free: the SYN queues in the
        # successor's listen backlog even before it reaches accept()
        nxt = connect(
            self._spec.workers[succ], f"learner{succ}", timeout=self.timeout
        )
        # the ring handshake rides at seq 0, outside the session stream
        nxt.send(HELLO, {"rank": rank}, seq=0)
        listener.settimeout(self.timeout)
        try:
            sock, _ = listener.accept()
        except socket.timeout:
            raise LearnerFailure(
                message=f"ring bootstrap: no predecessor connected within "
                f"{self.timeout}s; a peer died and the surviving ranks "
                "deadlocked"
            ) from None
        prev = (rank - 1) % self.p
        prv = Conn(sock, f"learner{prev}")
        if self._session is not None:
            self._next = SessionConn(nxt, self._session)
            self._prev = SessionConn(prv, self._session)
        else:
            self._next, self._prev = nxt, prv
        self._prev.settimeout(self.timeout)
        self._next.settimeout(self.timeout)
        self._prev.recv()  # the predecessor's HELLO (seq 0)

    def teardown_rank(self) -> None:
        """Close this process's ring endpoints (worker exit path)."""
        for conn in (self._next, self._prev):
            if conn is not None:
                conn.close()
        self._next = self._prev = None

    # -- session resume (recovery=reconnect) --------------------------------

    def _resume_pause(self, attempt: int) -> float:
        """Jittered exponential backoff between re-dial attempts, seeded per
        (rank, resume, attempt) so ranks desynchronize deterministically."""
        u = _hash_uniform(self._resume_seed, self._rank, self._resumes, attempt)
        return min(0.5, self._resume_retry.jittered_backoff(attempt, u))

    def _budget_ok(self) -> bool:
        """Per-session resume budget, unified with the PS retry policy: one
        session may repair its links max_retries + 1 times in total."""
        return self._resumes < self._resume_retry.max_retries + 1

    def _send_next(self, op: Callable[[Any], Any]) -> None:
        """Run ``op(self._next)``; on connection loss, repair the outgoing
        link and rely on the replay buffer (the frame was recorded before
        the failed send, so the repair already re-delivered it)."""
        try:
            op(self._next)
        except ConnectionLost as exc:
            if self._session is None:
                raise
            self._repair_next(exc)

    def _recv_prev(self):
        """Receive from the predecessor, re-accepting the incoming link on
        connection loss (duplicate replayed frames are skipped by the
        SessionConn)."""
        while True:
            try:
                return self._prev.recv()
            except ConnectionLost as exc:
                if self._session is None:
                    raise
                self._repair_prev(exc)

    def _try_service_resume(self, window: float) -> bool:
        """Answer one incoming RESUME on our own listener (repairing the
        predecessor link) while we ourselves wait on an outgoing repair.

        This is what breaks the symmetric deadlock: when *both* of a pair's
        links die at once (any p=2 cut, or a full partition), both ranks hit
        the failed *send* first and enter :meth:`_repair_next` — each dialing
        a peer that is itself dialing, with nobody in accept.  Servicing the
        listener between RESUME_OK polls lets the two dials pair up.
        """
        listener = self._listeners.get(self._rank)
        if listener is None:
            return False
        prev = (self._rank - 1) % self.p
        listener.settimeout(window)
        try:
            sock, _ = listener.accept()
        except (socket.timeout, OSError):
            return False
        conn = Conn(sock, f"learner{prev}")
        try:
            conn.settimeout(1.0)
            frame = conn.recv()
            if (
                frame.kind != RESUME
                or frame.meta.get("sess") != self._session
                or int(frame.meta.get("rank", -1)) != prev
            ):
                conn.close()
                return False
            conn.send(RESUME_OK, {"last": self._prev.last_recv_seq}, seq=0)
            conn.settimeout(self.timeout)
        except (ConnectionLost, ProtocolError, socket.timeout):
            conn.close()
            return False
        self._prev.adopt(conn)
        return True

    def _repair_next(self, cause: ConnectionLost) -> None:
        """Re-dial the successor and replay un-acked frames.

        The successor answers RESUME with RESUME_OK carrying the last seq it
        processed from us; everything newer is re-sent.  One outgoing dial is
        kept alive across RESUME_OK polls (re-dialing would strand stale
        connections in the peer's backlog); between polls the rank services
        its own listener so symmetric double-link cuts converge.  Gives up
        (re-raises the original loss) when the reconnect deadline or the
        per-session budget expires, or the replay buffer no longer covers
        the gap.
        """
        if not self._budget_ok():
            raise cause
        self._resumes += 1
        succ = (self._rank + 1) % self.p
        deadline = time.monotonic() + self._resume_deadline
        attempt = 0
        pending: Optional[Conn] = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if pending is not None:
                    pending.close()
                raise cause
            try:
                if pending is None:
                    pending = connect(
                        self._spec.workers[succ], f"learner{succ}",
                        timeout=min(remaining, 1.0),
                    )
                    pending.send(
                        RESUME,
                        {"rank": self._rank, "sess": self._session},
                        seq=0,
                    )
                pending.settimeout(0.25)
                ok = pending.recv()
                if ok.kind != RESUME_OK:
                    pending.close()
                    raise cause
                pending.settimeout(self.timeout)
                self._next.adopt(pending)
                self._next.replay_from(int(ok.meta.get("last", 0)))
                return
            except SessionUnrecoverable:
                raise cause
            except socket.timeout:
                # the successor has not answered yet — it may itself be
                # blocked dialing *us*: service our listener so it can pair
                self._try_service_resume(0.05)
            except (ConnectionLost, ProtocolError):
                if pending is not None:
                    pending.close()
                pending = None
                pause = self._resume_pause(attempt)
                attempt += 1
                time.sleep(min(pause, max(0.0, deadline - time.monotonic())))

    def _repair_prev(self, cause: ConnectionLost) -> None:
        """Re-accept the predecessor's replacement connection.

        Validates the RESUME handshake (session token + expected rank) and
        answers with the last seq we processed so the dialer replays only
        what we missed.  Gives up when the reconnect deadline expires.
        """
        if not self._budget_ok():
            raise cause
        self._resumes += 1
        prev = (self._rank - 1) % self.p
        listener = self._listeners.get(self._rank)
        if listener is None:
            raise cause
        deadline = time.monotonic() + self._resume_deadline
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise cause
            listener.settimeout(remaining)
            try:
                sock, _ = listener.accept()
            except (socket.timeout, OSError):
                raise cause
            conn = Conn(sock, f"learner{prev}")
            try:
                conn.settimeout(max(0.05, deadline - time.monotonic()))
                frame = conn.recv()
                if (
                    frame.kind != RESUME
                    or frame.meta.get("sess") != self._session
                    or int(frame.meta.get("rank", -1)) != prev
                ):
                    conn.close()
                    continue
                conn.send(
                    RESUME_OK, {"last": self._prev.last_recv_seq}, seq=0
                )
                conn.settimeout(self.timeout)
            except (ConnectionLost, ProtocolError, socket.timeout):
                conn.close()
                continue
            self._prev.adopt(conn)
            return

    def _fail(self, exc: BaseException, opname: str, rank: int) -> LearnerFailure:
        if isinstance(exc, ConnectionLost):
            victim = _peer_rank(exc.peer)
            return LearnerFailure(
                victim,
                None,
                f"{opname}: ring connection to {exc.peer} lost (peer died); "
                f"rank {rank} abandoned the round (surviving ranks would "
                "have deadlocked)",
            )
        return LearnerFailure(
            message=f"{opname} stalled for {self.timeout}s on the ring; a "
            "peer died undetected and the surviving ranks deadlocked"
        )

    # -- Collective API -----------------------------------------------------

    def broadcast(self, rank, array, root=0, nbytes=0.0, ctx=0) -> Generator:
        return blocking(self._broadcast, rank, array, root)

    def _broadcast(self, rank: int, array, root: int) -> np.ndarray:
        if self.p == 1:
            return np.array(array, copy=True)
        self._setup(rank)
        try:
            if rank == root:
                out = np.array(array, copy=True)
                self._send_next(lambda c: c.send_tensor(DATA, out, {"op": "bc"}))
            else:
                frame = self._recv_prev()
                out = np.array(frame.tensor(), copy=True)
                if (rank + 1) % self.p != root:
                    self._send_next(
                        lambda c: c.send_tensor(DATA, out, {"op": "bc"})
                    )
        except (ConnectionLost, socket.timeout) as exc:
            raise self._fail(exc, "broadcast", rank) from None
        self.bytes_moved += float(out.nbytes)
        return out

    def allreduce(
        self, rank, array, nbytes=0.0, ctx=0, algorithm="recursive_doubling"
    ) -> Generator:
        # `algorithm` picks a wire schedule on the simulated fabric; a TCP
        # ring has exactly one, so it is accepted and ignored here.
        return blocking(self._allreduce, rank, array)

    def _allreduce(self, rank: int, array: np.ndarray) -> np.ndarray:
        if self.p == 1:
            return np.array(array, copy=True)
        self._setup(rank)
        arr = np.ascontiguousarray(array).copy()
        flat = arr.reshape(-1)
        edges = np.linspace(0, flat.size, self.p + 1).astype(int)
        bounds = list(zip(edges[:-1], edges[1:]))
        try:
            # reduce-scatter: after p-1 steps rank r holds the full sum of
            # chunk (r+1) mod p
            for step in range(self.p - 1):
                s_chunk = (rank - step) % self.p
                r_chunk = (rank - step - 1) % self.p
                lo, hi = bounds[s_chunk]
                chunk = np.ascontiguousarray(flat[lo:hi])
                self._send_next(
                    lambda c: c.send_tensor(DATA, chunk, {"op": "ar", "c": s_chunk})
                )
                frame = self._recv_prev()
                lo, hi = bounds[r_chunk]
                if hi > lo:
                    flat[lo:hi] += frame.tensor()
            # allgather: circulate each finished chunk the rest of the way
            for step in range(self.p - 1):
                s_chunk = (rank - step + 1) % self.p
                r_chunk = (rank - step) % self.p
                lo, hi = bounds[s_chunk]
                chunk = np.ascontiguousarray(flat[lo:hi])
                self._send_next(
                    lambda c: c.send_tensor(DATA, chunk, {"op": "ag", "c": s_chunk})
                )
                frame = self._recv_prev()
                lo, hi = bounds[r_chunk]
                if hi > lo:
                    flat[lo:hi] = frame.tensor()
        except (ConnectionLost, socket.timeout) as exc:
            raise self._fail(exc, "allreduce", rank) from None
        self.bytes_moved += 2.0 * float(flat.nbytes) * (self.p - 1) / self.p
        return arr

    def allgather(self, rank, item, nbytes=0.0, ctx=0) -> Generator:
        return blocking(self._allgather, rank, item, ctx, nbytes)

    def _allgather(self, rank: int, item, tag, nbytes: float) -> List[Any]:
        if self.p == 1:
            return [item]
        self._setup(rank)
        pieces: List[Any] = [None] * self.p
        pieces[rank] = item
        cur_src, cur = rank, item
        try:
            for _ in range(self.p - 1):
                piece, src = cur, cur_src
                self._send_next(lambda c: c.send_obj(
                    DATA, piece, {"op": "gather", "src": src, "tag": str(tag)}
                ))
                frame = self._recv_prev()
                cur_src = int(frame.meta["src"])
                cur = frame.obj()
                pieces[cur_src] = cur
        except (ConnectionLost, socket.timeout) as exc:
            raise self._fail(exc, f"allgather({tag!r})", rank) from None
        self.bytes_moved += 2.0 * float(nbytes) * (self.p - 1)
        return pieces


# -- parameter server ----------------------------------------------------------


def _send_reply(conn: Conn, seq: int, reply: Tuple[dict, Optional[np.ndarray]]):
    meta, arr = reply
    try:
        if arr is None:
            conn.send(PS_REP, meta, seq=seq)
        else:
            conn.send_tensor(PS_REP, arr, meta, seq=seq)
    except ConnectionLost:
        pass  # the client vanished or reconnected; its retry resends


def serve_shard(
    listener: socket.socket,
    sid: int,
    xs: np.ndarray,
    learning_rate: float,
    crash_after: Optional[int],
) -> None:
    """One shard's serving loop: own ``xs`` (the slice), apply framed
    requests in genuine arrival order, dedupe per-rank seq, answer STOP
    with a STATS frame (final slice + counters).

    Shared verbatim by the fork-mode shard child and the external
    ``repro launch --role ps:K`` process.  Requests from every client
    connection funnel through one queue, so arrival order — the staleness
    the paper measures — is real scheduler/network nondeterminism.
    """
    inbox: "queue.Queue" = queue.Queue()
    closing = threading.Event()

    def _reader(conn: Conn) -> None:
        while True:
            try:
                frame = conn.recv()
            except (ConnectionLost, ProtocolError, OSError):
                return
            inbox.put((conn, frame))

    def _acceptor() -> None:
        while not closing.is_set():
            try:
                sock, _ = listener.accept()
            except OSError:
                return
            conn = Conn(sock, "client")
            threading.Thread(target=_reader, args=(conn,), daemon=True).start()

    threading.Thread(target=_acceptor, daemon=True).start()
    version = 0
    pushes = 0
    applies = 0
    last_seq: Dict[int, int] = {}
    last_reply: Dict[int, Tuple[dict, Optional[np.ndarray]]] = {}
    while True:
        conn, frame = inbox.get()
        if frame.kind == STOP:
            closing.set()
            try:
                listener.close()
            except OSError:
                pass
            try:
                conn.send_obj(STATS, {
                    "sid": sid, "version": version, "pushes": pushes,
                    "x": np.array(xs, copy=True),
                })
            except ConnectionLost:
                pass
            return
        if frame.kind != PS_REQ:
            continue
        op = frame.meta.get("op")
        rank = int(frame.meta.get("rank", -1))
        seq = frame.seq
        if last_seq.get(rank) == seq:
            # duplicate of an already-applied request (client retried after
            # a dropped/lost reply): answer from cache, do not re-apply
            _send_reply(conn, seq, last_reply[rank])
            continue
        payload = frame.tensor() if len(frame.payload) else None
        if op == "push":
            if payload is not None:
                xs -= learning_rate * payload
            version += 1
            pushes += 1
            applies += 1
            reply: Tuple[dict, Optional[np.ndarray]] = ({"version": version}, None)
        elif op == "pull":
            reply = ({"version": version}, np.array(xs, copy=True))
        elif op == "elastic":
            version += 1
            applies += 1
            if payload is None:
                reply = ({"version": version, "none": True}, None)
            else:
                e = float(frame.meta.get("alpha", 0.0)) * (payload - xs)
                xs += e
                reply = ({"version": version}, e)
        else:
            reply = ({"error": f"unknown op {op!r}"}, None)
        last_seq[rank] = seq
        last_reply[rank] = reply
        _send_reply(conn, seq, reply)
        if crash_after is not None and applies >= crash_after:
            # injected shard death: the reply to the fatal apply got out,
            # the dedupe cache dies with us
            os._exit(_PS_CRASH_EXIT)


def _shard_child_main(ps: "NetParameterServer", sid: int,
                      listeners: Dict[str, socket.socket]) -> None:
    """Fork-mode shard process: keep our listener, drop the rest, serve."""
    close_all(listeners, keep=(f"ps{sid}",))
    _events.install(None)
    lo, hi = ps.layout.bounds[sid]
    xs = np.array(ps._x0[lo:hi], copy=True)
    serve_shard(listeners[f"ps{sid}"], sid, xs,
                ps.learning_rate, ps.crash_after.get(sid))


def run_ps_role(spec: ClusterSpec, sid: int, timeout: float = 120.0) -> None:
    """External-mode shard: bootstrap the slice from the coordinator's
    WELCOME frame, then serve on our spec address until STOP."""
    listener = bind_listener(spec.ps[sid])
    ctrl = connect(spec.coordinator, "coordinator", timeout=timeout)
    ctrl.send(HELLO, {"job": "ps", "task": sid, "pid": os.getpid()})
    ctrl.settimeout(timeout)
    welcome = ctrl.recv()
    if welcome.kind != WELCOME:
        raise ProtocolError(
            f"ps{sid}: expected WELCOME from the coordinator, got "
            f"frame kind {welcome.kind}"
        )
    meta = welcome.meta
    xs = np.array(welcome.tensor(), copy=True)
    ctrl.close()
    serve_shard(listener, sid, xs, float(meta["lr"]), meta.get("crash_after"))


class NetPSClient(PSClientLike):
    """One rank's framed connection to every shard (same staleness
    accounting and retry semantics as :class:`repro.runtime.MPPSClient`).

    Reply loss — genuine (a dead shard, a cut connection) or injected (a
    ``drop`` fault consuming a real PS_REP frame off the wire) — drives a
    resend-with-backoff protocol: the client resends the *same* seq after
    each backoff (the shard dedupes), discards stale replies from
    abandoned attempts, reconnects on connection loss, and raises
    :class:`RetryBudgetExhausted` when the budget runs out.
    """

    def __init__(self, ps: "NetParameterServer", rank: int) -> None:
        self.ps = ps
        self.rank = rank
        self._seq = 0
        self._op_ordinal = 0  # one push/pull/elastic call = one fault ordinal
        self.staleness_samples: List[int] = []
        self._pull_version = 0
        self._pull_versions = [0] * ps.layout.n_shards
        self._conns: Dict[int, Optional[Conn]] = {}

    def _fault_gate(self) -> int:
        """Per-op fault decisions: sleep injected delays, return drop count."""
        ordinal = self._op_ordinal
        self._op_ordinal += 1
        plan = self.ps.plan
        if plan is None or not plan:
            return 0
        delay = plan.ps_reply_delay(self.rank, ordinal)
        if delay > 0.0:
            self.ps.fault_counts["delay"] = self.ps.fault_counts.get("delay", 0) + 1
            _events.emit(
                _events.FAULT_INJECTED,
                source=f"learner{self.rank}",
                fault="delay",
                seconds=delay,
                ordinal=ordinal,
            )
            time.sleep(delay)
        drops = plan.ps_reply_drops(self.rank, ordinal)
        if drops:
            self.ps.fault_counts["drop"] = (
                self.ps.fault_counts.get("drop", 0) + drops
            )
            _events.emit(
                _events.FAULT_INJECTED,
                source=f"learner{self.rank}",
                fault="drop",
                count=drops,
                ordinal=ordinal,
            )
        return drops

    def _shard_conn(self, sid: int, wait: float) -> Conn:
        conn = self._conns.get(sid)
        if conn is None:
            conn = connect(self.ps.addrs[sid], f"ps{sid}", timeout=wait)
            self._conns[sid] = conn
        return conn

    def _send(self, sid: int, meta: dict, payload, seq: int,
              wait: float) -> Optional[Conn]:
        try:
            conn = self._shard_conn(sid, wait)
            if payload is None:
                conn.send(PS_REQ, meta, seq=seq)
            else:
                conn.send_tensor(PS_REQ, payload, meta, seq=seq)
            return conn
        except ConnectionLost:
            self._conns[sid] = None
            return None

    def _backoff_pause(self, attempt: int, seq: int) -> float:
        """One jittered backoff sleep before resend number ``attempt + 1``.

        Deterministic per (plan seed, rank, seq, attempt) — repeated runs
        sleep identically — but decorrelated across ranks, so a dead shard
        does not synchronize a resend storm.  Accumulated in
        ``ps.backoff_seconds`` for the obs metrics.
        """
        ps = self.ps
        retry = ps.retry
        seed = ps.plan.seed if ps.plan is not None else 0
        u = _hash_uniform(seed, self.rank, seq, attempt)
        pause = retry.jittered_backoff(attempt, u)
        ps.backoff_seconds += pause
        return pause

    def _request(self, sid: int, op: str, payload, extra=None, drops: int = 0):
        ps = self.ps
        retry = ps.retry
        self._seq += 1
        seq = self._seq
        meta: Dict[str, Any] = {"op": op, "rank": self.rank}
        if extra is not None:
            meta["alpha"] = extra
        # the overall patience budget is spread over the send + every resend,
        # so a genuinely dead shard exhausts the typed retry budget in about
        # ps.timeout seconds total rather than hanging a bare recv; an
        # explicit retry.deadline_seconds caps the total patience harder
        attempts_allowed = retry.max_retries + 1
        per_wait = max(0.05, ps.timeout / attempts_allowed)
        patience = retry.deadline_seconds
        started = time.monotonic()
        attempt = 0  # resends performed so far
        waited = 0.0
        conn = self._send(sid, meta, payload, seq, per_wait)
        while True:
            frame = None
            if conn is not None:
                try:
                    conn.settimeout(per_wait)
                    frame = conn.recv()
                except socket.timeout:
                    frame = None
                except ConnectionLost:
                    self._conns[sid] = None
                    conn = None
            else:
                # unreachable shard: burn this attempt's wait so the budget
                # drains at the same rate as a silent one
                time.sleep(per_wait)
            if frame is None:
                waited += per_wait
                out_of_time = (
                    patience is not None
                    and time.monotonic() - started >= patience
                )
                if attempt >= retry.max_retries or out_of_time:
                    raise RetryBudgetExhausted(
                        self.rank,
                        attempt,
                        f"parameter-server shard {sid} gave no reply to "
                        f"{op!r} after {attempt + 1} attempts "
                        f"(~{waited:.1f}s waited"
                        f"{', retry deadline exceeded' if out_of_time else ''}"
                        f"); learner{self.rank} "
                        "exhausted its retry budget and the run deadlocked",
                    ) from None
                time.sleep(self._backoff_pause(attempt, seq))
                attempt += 1
                ps.retries += 1
                conn = self._send(sid, meta, payload, seq, per_wait)
                continue
            if frame.kind != PS_REP or frame.seq < seq:
                # stale reply from an earlier, abandoned attempt — discard
                continue
            if drops > 0:
                # injected frame loss: the genuine PS_REP was read off the
                # wire and thrown away; drive the real retry machinery
                drops -= 1
                if attempt >= retry.max_retries:
                    raise RetryBudgetExhausted(
                        self.rank,
                        attempt,
                        f"parameter-server shard {sid}: replies to {op!r} "
                        f"kept vanishing on the wire; learner{self.rank} "
                        f"exhausted its retry budget after {attempt + 1} "
                        "attempts and the run deadlocked",
                    )
                time.sleep(self._backoff_pause(attempt, seq))
                attempt += 1
                ps.retries += 1
                conn = self._send(sid, meta, payload, seq, per_wait)
                continue
            if "error" in frame.meta:
                raise ValueError(frame.meta["error"])
            return frame

    def push(self, grad: Optional[np.ndarray]) -> Generator:
        return blocking(self._push, grad)

    def _push(self, grad: Optional[np.ndarray]) -> int:
        ps = self.ps
        drops = self._fault_gate()
        version_now = 0
        for sid, (lo, hi) in enumerate(ps.layout.bounds):
            payload = None if grad is None else np.ascontiguousarray(grad[lo:hi])
            frame = self._request(sid, "push", payload, drops=drops)
            drops = 0  # the op-level fault applies to the first shard leg
            version_now += int(frame.meta["version"])
            ps.bytes_moved += ps.layout.slice_bytes(sid, ps.dtype.itemsize)
        staleness = max(0, version_now - self._pull_version - ps.layout.n_shards)
        self.staleness_samples.append(staleness)
        return staleness

    def pull(self) -> Generator:
        return blocking(self._pull)

    def _pull(self) -> np.ndarray:
        ps = self.ps
        drops = self._fault_gate()
        out = np.empty(ps.size, dtype=ps.dtype)
        version = 0
        for sid, (lo, hi) in enumerate(ps.layout.bounds):
            frame = self._request(sid, "pull", None, drops=drops)
            drops = 0
            v = int(frame.meta["version"])
            version += v
            self._pull_versions[sid] = v
            out[lo:hi] = frame.tensor()
            ps.bytes_moved += ps.layout.slice_bytes(sid, ps.dtype.itemsize)
        self._pull_version = version
        return out

    def elastic(self, x_local: Optional[np.ndarray], alpha: float) -> Generator:
        return blocking(self._elastic, x_local, alpha)

    def _elastic(self, x_local: Optional[np.ndarray], alpha: float) -> np.ndarray:
        ps = self.ps
        drops = self._fault_gate()
        out = np.empty(ps.size, dtype=ps.dtype)
        for sid, (lo, hi) in enumerate(ps.layout.bounds):
            payload = (
                None if x_local is None else np.ascontiguousarray(x_local[lo:hi])
            )
            frame = self._request(sid, "elastic", payload, extra=alpha, drops=drops)
            drops = 0
            self._pull_versions[sid] = int(frame.meta["version"])
            if not frame.meta.get("none"):
                out[lo:hi] = frame.tensor()
            ps.bytes_moved += 2.0 * ps.layout.slice_bytes(sid, ps.dtype.itemsize)
        return out


class NetParameterServer(ParameterServerHandle):
    """Sharded PS where each shard is a TCP server process.

    Fork mode: shards are forked before the workers, each inheriting its
    pre-bound listener and the initial parameter copy.  External mode: the
    handle is address-book-only; shards run elsewhere (:func:`run_ps_role`)
    and bootstrap from the coordinator.  Shutdown is uniform: the owner
    connects to each shard, sends STOP, and harvests a STATS frame (final
    slice + version/push counters) to assemble the final vector.
    """

    def __init__(self, ctx, p: int, size: int, n_shards: int,
                 learning_rate: float, dtype, timeout: float,
                 client_only: bool = False,
                 addrs: Tuple[str, ...] = ()) -> None:
        self._ctx = ctx
        self.p = p
        self.size = int(size)
        self._layout = ShardLayout.even(size, n_shards)
        self.learning_rate = learning_rate
        self.dtype = np.dtype(dtype)
        self.timeout = timeout
        self.client_only = client_only
        self.addrs: Tuple[str, ...] = tuple(addrs)
        self.bytes_moved = 0.0  # per-process accumulator after fork
        self.retries = 0        # per-process resend counter (client side)
        self.backoff_seconds = 0.0  # per-process retry backoff slept
        self.fault_counts: Dict[str, int] = {}  # per-process injection counts
        self._clients: List[NetPSClient] = []  # this process's clients
        self.plan: Optional[FaultPlan] = None
        self.retry = RetryPolicy()
        self.crash_after: Dict[int, int] = {}
        self.shard_restarts = 0  # net never restarts shards (capability error)
        self.events: List[Tuple[str, str, float]] = []
        self._x0 = np.zeros(self.size, dtype=self.dtype)
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._pushes_applied = 0
        self.versions = [0] * n_shards
        self._x_final: Optional[np.ndarray] = None
        self._down = False

    # -- handle surface ------------------------------------------------------

    @property
    def x(self) -> np.ndarray:
        if self._x_final is not None:
            return self._x_final
        return self._x0

    @property
    def layout(self) -> ShardLayout:
        return self._layout

    @property
    def pushes_applied(self) -> int:
        return self._pushes_applied

    def set_params(self, x0: np.ndarray) -> None:
        if x0.shape != (self.size,):
            raise ValueError(f"shape mismatch: {x0.shape} vs ({self.size},)")
        self._x0[:] = x0

    def client(self, rank: int) -> NetPSClient:
        client = NetPSClient(self, rank)
        self._clients.append(client)
        return client

    # -- fault plumbing ------------------------------------------------------

    def install_faults(self, plan: FaultPlan, retry: RetryPolicy,
                       recovery: str) -> None:
        self.plan = plan
        self.retry = retry
        self.crash_after = {
            sid: push
            for sid in range(self._layout.n_shards)
            if (push := plan.ps_crash_push(sid)) is not None
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self, addrs: Tuple[str, ...],
              listeners: Dict[str, socket.socket]) -> None:
        """Fork one shard process per listener (fork mode, pre-worker-fork)."""
        if self.client_only or self._procs:
            return
        self.addrs = tuple(addrs)
        for sid in range(self._layout.n_shards):
            proc = self._ctx.Process(
                target=_shard_child_main, args=(self, sid, listeners),
                name=f"repro-ps{sid}", daemon=True,
            )
            self._procs.append(proc)
            proc.start()
        # the children own the listening fds now; the parent's copies must
        # go, or a dead shard's port would still accept (and strand) clients
        for sid in range(self._layout.n_shards):
            try:
                listeners[f"ps{sid}"].close()
            except OSError:
                pass

    def shutdown(self) -> None:
        """Stop shards, harvest their stats frames, assemble the final x."""
        if self.client_only or self._down:
            return
        self._down = True
        xf = np.array(self._x0, copy=True)
        for sid, addr in enumerate(self.addrs):
            try:
                conn = connect(addr, f"ps{sid}", timeout=2.0)
                conn.send(STOP)
                conn.settimeout(_JOIN_GRACE)
                stats = conn.recv().obj()
                conn.close()
            except (ConnectionLost, socket.timeout, ProtocolError):
                # a crashed shard: its applies since start are lost and its
                # slice of the final vector stays at the initial copy
                self.fault_counts["ps_crash"] = (
                    self.fault_counts.get("ps_crash", 0) + 1
                )
                continue
            self.versions[sid] = int(stats["version"])
            self._pushes_applied += int(stats["pushes"])
            lo, hi = self._layout.bounds[sid]
            xf[lo:hi] = stats["x"]
        self._x_final = xf
        for proc in self._procs:
            proc.join(timeout=_JOIN_GRACE)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_GRACE)
        self._procs = []

    def __del__(self):  # safety net; normal path is NetBackend.run's finally
        try:
            self.shutdown()
        except Exception:
            pass


# -- coordinator control plane -------------------------------------------------


class _FrameSink(_events.Sink):
    """Worker-side event sink: one EVENT frame per record on the control
    connection (the send lock makes it safe beside the heartbeat thread)."""

    def __init__(self, conn: Conn) -> None:
        self._conn = conn

    def emit(self, event: _events.Event) -> None:
        try:
            self._conn.send(EVENT, event.to_dict())
        except ConnectionLost:
            pass


class _ControlPlane:
    """Coordinator side of the bootstrap handshake and run telemetry.

    One accept thread hands each control connection to a reader thread.
    Workers HELLO and then stream HEARTBEAT/EVENT/RESULT/ERROR frames;
    external PS shards HELLO to collect their WELCOME (slice bootstrap).
    When every expected role has arrived, WELCOME goes out to all workers
    at once — the rendezvous barrier.  All shared state mutates under one
    condition variable the drain loop and monitor wait on.
    """

    def __init__(self, listener: socket.socket, p: int, expect_ps: int,
                 bus, ps_init: Optional[Callable] = None,
                 session: str = "",
                 clock: Callable[[], float] = lambda: 0.0) -> None:
        self.listener = listener
        self.p = p
        self.expect_ps = expect_ps
        self.bus = bus
        self.ps_init = ps_init
        self.session = session  # non-empty iff recovery=reconnect
        self.clock = clock
        self.cond = threading.Condition()
        self.conns: Dict[int, Conn] = {}
        self.ever_connected: set = set()
        self.last_seen: Dict[int, float] = {}
        self.results: Dict[int, dict] = {}
        self.errors: Dict[int, dict] = {}
        self.finished: set = set()
        self.dead: Dict[int, float] = {}  # rank -> detection latency
        self.last_ctrl_seq: Dict[int, int] = {}  # per-rank processed seq
        self.resumes: Dict[int, int] = {}  # rank -> successful re-attaches
        self._ps_ready = 0
        self._welcomed = False
        self._closing = False

    def start(self) -> "_ControlPlane":
        self.listener.settimeout(0.25)
        threading.Thread(
            target=self._accept_loop, name="net-coordinator", daemon=True
        ).start()
        return self

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn = Conn(sock, "peer")
            threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            ).start()

    def _serve_conn(self, conn: Conn) -> None:
        try:
            conn.settimeout(30.0)
            hello = conn.recv()
            conn.settimeout(None)
        except (ConnectionLost, ProtocolError, socket.timeout):
            conn.close()
            return
        if hello.kind == RESUME:
            self._serve_resume(conn, hello)
            return
        if hello.kind != HELLO:
            conn.close()
            return
        job = hello.meta.get("job")
        task = int(hello.meta.get("task", -1))
        if job == "ps":
            # external shard bootstrap: hand it its slice, then let it go —
            # shards serve learners on their own listener, not through us
            if self.ps_init is not None:
                meta, x0 = self.ps_init(task)
                try:
                    conn.send_tensor(WELCOME, x0, meta)
                except ConnectionLost:
                    pass
            conn.close()
            with self.cond:
                self._ps_ready += 1
                self._maybe_welcome()
            return
        if job != "worker" or not (0 <= task < self.p):
            conn.close()
            return
        conn.peer = f"learner{task}"
        with self.cond:
            self.conns[task] = conn
            self.ever_connected.add(task)
            self.last_seen[task] = time.monotonic()
            self._maybe_welcome()
        self._reader(task, conn)

    def _serve_resume(self, conn: Conn, frame) -> None:
        """A worker re-attaching its control session after a disconnect.

        Validate the session token, re-bind the rank's connection, answer
        with the last seq we processed (the worker replays everything
        newer), and emit the recovery event the run log promises.
        """
        task = int(frame.meta.get("task", -1))
        sess = frame.meta.get("sess")
        if (
            not self.session
            or sess != self.session
            or not (0 <= task < self.p)
        ):
            conn.close()
            return
        with self.cond:
            if task in self.dead or task in self.finished:
                # the seat was already surrendered (deadline expired) or the
                # run finished without this worker — no resume
                conn.close()
                return
            conn.peer = f"learner{task}"
            last = self.last_ctrl_seq.get(task, 0)
            try:
                conn.send(RESUME_OK, {"last": last}, seq=0)
            except ConnectionLost:
                conn.close()
                return
            self.conns[task] = conn
            self.ever_connected.add(task)
            self.last_seen[task] = time.monotonic()
            self.resumes[task] = self.resumes.get(task, 0) + 1
            self.cond.notify_all()
        _events.emit(
            _events.RECOVERY_ACTION,
            t=self.clock(),
            action="reconnect",
            mode="reconnect",
            learner=task,
            resumed_at_seq=last,
            resumes=self.resumes[task],
        )
        self._reader(task, conn)

    def _maybe_welcome(self) -> None:  # caller holds self.cond
        if (
            not self._welcomed
            and len(self.conns) == self.p
            and self._ps_ready >= self.expect_ps
        ):
            self._welcomed = True
            for rank, conn in self.conns.items():
                meta = {"events": self.bus is not None, "rank": rank}
                if self.session:
                    meta["sess"] = self.session
                try:
                    conn.send(WELCOME, meta)
                except ConnectionLost:
                    pass
            self.cond.notify_all()

    def _reader(self, rank: int, conn: Conn) -> None:
        while True:
            try:
                frame = conn.recv()
            except (ConnectionLost, ProtocolError, OSError):
                # EOF comes only after every buffered frame (incl. a final
                # RESULT) was delivered, so finish-before-death ordering
                # holds.  The identity guard matters under resume: a stale
                # reader noticing its old socket died must not unseat the
                # replacement connection a _serve_resume just installed
                with self.cond:
                    if self.conns.get(rank) is conn:
                        self.conns.pop(rank, None)
                    self.cond.notify_all()
                conn.close()
                return
            with self.cond:
                self.last_seen[rank] = time.monotonic()
                if frame.seq > 0:
                    # session streams are contiguous: anything at or below
                    # the high-water mark is a replayed duplicate
                    if frame.seq <= self.last_ctrl_seq.get(rank, 0):
                        continue
                    self.last_ctrl_seq[rank] = frame.seq
            if frame.kind == HEARTBEAT:
                continue
            if frame.kind == EVENT:
                if self.bus is not None:
                    try:
                        self.bus.republish(_events.Event.from_dict(frame.meta))
                    except Exception:
                        continue  # torn/foreign record; keep the reader alive
            elif frame.kind == RESULT:
                with self.cond:
                    self.results[rank] = frame.obj()
                    self.finished.add(rank)
                    self.cond.notify_all()
            elif frame.kind == ERROR:
                with self.cond:
                    self.errors[rank] = frame.obj()
                    self.finished.add(rank)
                    self.cond.notify_all()

    def close(self) -> None:
        self._closing = True
        try:
            self.listener.close()
        except OSError:
            pass
        with self.cond:
            conns = list(self.conns.values())
            self.conns.clear()
        for conn in conns:
            conn.close()


# -- the worker process --------------------------------------------------------


class _WorkerCtrl:
    """The worker's control connection, session-resumable when the WELCOME
    carried a session token (recovery=reconnect).

    All control-plane senders (heartbeat thread, event sink, final
    RESULT/ERROR) go through here; on connection loss one of them wins the
    resume lock, re-dials the coordinator with RESUME, adopts the fresh
    socket into the :class:`SessionConn`, and replays un-acked frames.
    Session-stream frames are recorded *before* the failed send, so the
    replay already re-delivered them — senders never re-run after a resume.
    """

    def __init__(self, backend: "NetBackend", lid: int,
                 sess: SessionConn) -> None:
        self.backend = backend
        self.lid = lid
        self.sess = sess
        self._lock = threading.Lock()
        self._gen = 0  # bumped on every successful resume
        self._given_up = False

    def _guarded(self, fn: Callable[[], int]) -> Optional[int]:
        gen = self._gen
        try:
            return fn()
        except ConnectionLost:
            if not self._resume(gen):
                raise
            return None  # the replay delivered any recorded frame

    def send(self, kind: int, meta: Optional[Dict[str, Any]] = None):
        return self._guarded(lambda: self.sess.send(kind, meta))

    def send_obj(self, kind: int, obj: Any,
                 meta: Optional[Dict[str, Any]] = None):
        return self._guarded(lambda: self.sess.send_obj(kind, obj, meta))

    def _resume(self, gen: int) -> bool:
        if not self.sess.session:
            return False
        with self._lock:
            if self._gen != gen:
                return True  # another thread already re-attached
            if self._given_up:
                return False
            backend = self.backend
            deadline = time.monotonic() + backend.reconnect_deadline
            retry = backend._retry
            seed = backend._plan.seed if backend._plan is not None else 0
            attempt = 0
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._given_up = True
                    return False
                try:
                    conn = connect(
                        backend._spec.coordinator, "coordinator",
                        timeout=remaining,
                    )
                    conn.send(RESUME, {
                        "job": "worker", "task": self.lid,
                        "sess": self.sess.session,
                    }, seq=0)
                    conn.settimeout(max(0.05, deadline - time.monotonic()))
                    ok = conn.recv()
                    if ok.kind != RESUME_OK:
                        conn.close()
                        raise ConnectionLost("coordinator", "resume rejected")
                    conn.settimeout(None)
                    self.sess.adopt(conn)
                    self.sess.replay_from(int(ok.meta.get("last", 0)))
                    self._gen += 1
                    return True
                except SessionUnrecoverable:
                    self._given_up = True
                    return False
                except (ConnectionLost, ProtocolError, socket.timeout):
                    u = _hash_uniform(seed, self.lid, self._gen, attempt)
                    pause = min(0.5, retry.jittered_backoff(attempt, u))
                    attempt += 1
                    time.sleep(
                        min(pause, max(0.0, deadline - time.monotonic()))
                    )

    def close(self) -> None:
        self.sess.close()


def _worker_body(trainer, lid: int) -> None:
    """Drive one learner to completion: HELLO → WELCOME → heartbeats →
    ``_learner_proc`` → RESULT (or ERROR) on the control connection.

    Runs inside a fork-mode child or an external ``--role worker:K``
    process — the only difference is how the trainer got here.
    """
    backend = trainer.backend
    spec: ClusterSpec = backend._spec
    if backend._t0 is None:
        backend._t0 = time.perf_counter()
    raw = connect(spec.coordinator, "coordinator", timeout=backend.timeout)
    # the bootstrap handshake rides at seq 0, outside the session stream
    raw.send(HELLO, {"job": "worker", "task": lid, "pid": os.getpid()}, seq=0)
    raw.settimeout(backend.timeout)
    welcome = raw.recv()
    if welcome.kind != WELCOME:
        raise ProtocolError(
            f"learner{lid}: expected WELCOME from the coordinator, got "
            f"frame kind {welcome.kind}"
        )
    raw.settimeout(None)
    session = welcome.meta.get("sess") or ""
    ctrl = _WorkerCtrl(backend, lid, SessionConn(raw, session))
    backend._worker_ctrl = ctrl
    if session:
        backend.collective.configure_resume(
            session, backend.reconnect_deadline, backend._retry,
            backend._plan.seed if backend._plan is not None else 0,
        )
    # the forked child inherits the parent's ambient bus (and any open sink
    # file descriptors) — swap it for one that frames each event onto the
    # control connection; the coordinator republishes in authoritative order
    if welcome.meta.get("events"):
        _events.install(
            _events.EventBus(
                sinks=[_FrameSink(ctrl)],
                clock=backend.clock,
                keep_snapshot=False,
            )
        )
    else:
        _events.install(None)
    hb_stop = threading.Event()

    def _beat() -> None:
        while not hb_stop.wait(backend.heartbeat_interval):
            try:
                ctrl.send(HEARTBEAT)
            except ConnectionLost:
                return

    threading.Thread(target=_beat, name="net-heartbeat", daemon=True).start()
    t0 = time.perf_counter()
    try:
        for command in trainer._learner_proc(lid):
            raise RuntimeError(
                f"trainer yielded simulator command {command!r} on the net "
                "backend; route it through the repro.runtime interfaces"
            )
        wall = time.perf_counter() - t0
        ps = backend._ps
        ps_bytes = ps.bytes_moved if ps is not None else 0.0
        data = {
            "records": trainer.tape.records if lid == 0 else None,
            "samples": trainer.tape.samples,
            "epoch": trainer.tape.epoch,
            "tape_rank": trainer.tape.rank_summary(),
            "flat": np.array(trainer.workloads[lid].flat.data, copy=True)
            if lid == 0
            else None,
            "export": trainer._worker_export(lid),
            "failed_at": None if backend._failure is None else backend._failure[1],
            "comm_seconds": backend._comm_seconds,
            "wall_seconds": wall,
            "bytes": backend.collective.bytes_moved + ps_bytes,
            "retries": ps.retries if ps is not None else 0,
            "backoff": ps.backoff_seconds if ps is not None else 0.0,
            "fault_counts": dict(
                ps.fault_counts if ps is not None else {},
                **backend._worker_fault_counts,
            ),
        }
        ctrl.send_obj(RESULT, data)
    except BaseException as exc:  # noqa: BLE001 - must reach the coordinator
        failed_at = None if backend._failure is None else backend._failure[1]
        ps = backend._ps
        try:
            ctrl.send_obj(ERROR, {
                "error": f"{type(exc).__name__}: {exc}",
                "failed_at": failed_at,
                "learner_id": getattr(exc, "learner_id", None),
                "step": getattr(exc, "step", None),
                "retry_exhausted": isinstance(exc, RetryBudgetExhausted),
                "attempts": getattr(exc, "attempts", 0),
                "retries": ps.retries if ps is not None else 0,
                "backoff": ps.backoff_seconds if ps is not None else 0.0,
                "fault_counts": dict(
                    ps.fault_counts if ps is not None else {},
                    **backend._worker_fault_counts,
                ),
            })
        except ConnectionLost:
            pass  # coordinator already gone; its monitor saw us die
    finally:
        hb_stop.set()
        backend.collective.teardown_rank()
        ctrl.close()


def _worker_child_main(trainer, lid: int) -> None:
    """Fork-mode entry: drop listeners we don't own, then run the body."""
    backend = trainer.backend
    close_all(backend._listeners, keep=(f"worker{lid}",))
    _worker_body(trainer, lid)


# -- the backend ---------------------------------------------------------------


class NetBackend(Backend):
    """Distributed execution over TCP: one OS process per learner/shard."""

    name = "net"

    def __init__(self, timeout: float = 120.0, mode: str = "fork",
                 spec: Optional[ClusterSpec] = None,
                 task: Optional[int] = None,
                 host: str = "127.0.0.1",
                 heartbeat_interval: float = _HEARTBEAT_PERIOD,
                 heartbeat_timeout: float = _STALE_AFTER,
                 reconnect_deadline: float = _RECONNECT_DEADLINE) -> None:
        if mode not in ("fork", "coordinator", "worker"):
            raise ValueError(
                f"net backend mode must be fork/coordinator/worker, got {mode!r}"
            )
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                f"heartbeat_timeout ({heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({heartbeat_interval}) or every worker "
                "reads as stale"
            )
        if reconnect_deadline < 0:
            raise ValueError(
                f"reconnect_deadline must be >= 0, got {reconnect_deadline}"
            )
        if mode == "fork" and "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "net backend's local cluster needs the 'fork' start method "
                "(workers inherit the constructed trainer); use `repro "
                "launch` with explicit roles on this platform"
            )
        self._ctx = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        self.timeout = timeout
        self.mode = mode
        self.host = host
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.reconnect_deadline = reconnect_deadline
        self._spec = spec
        self._task = task
        self._session = ""  # non-empty iff recovery=reconnect
        self._worker_ctrl: Optional[_WorkerCtrl] = None  # worker-process side
        self._backoff_total = 0.0
        self.collective: Optional[NetCollective] = None
        self._trainer = None
        self._ps: Optional[NetParameterServer] = None
        self._seed_seq: Optional[np.random.SeedSequence] = None
        self._failure = None  # (lid, step) noted in the worker that died
        self._comm_seconds = 0.0  # per-process accumulator after fork
        self._t0: Optional[float] = None
        self._duration = 0.0
        self._plan: Optional[FaultPlan] = None
        self._retry = RetryPolicy()
        self._recovery = "fail_fast"
        self._detections: Dict[int, float] = {}
        self._fault_events: List[Tuple[str, str, float]] = []
        self._fault_counts: Dict[str, int] = {}
        self._worker_fault_counts: Dict[str, int] = {}  # per-process after fork
        self._retries_total = 0
        self._rank_tapes: List[Dict[str, Any]] = []
        self._listeners: Dict[str, socket.socket] = {}
        self._ext_alive: Dict[int, Callable[[], bool]] = {}

    # -- lifecycle ----------------------------------------------------------

    def bind(self, trainer) -> None:
        if self._trainer is not None:
            raise RuntimeError("a backend instance drives exactly one trainer")
        self._trainer = trainer
        self.sample_scale = trainer.config.p
        self._seed_seq = np.random.SeedSequence(trainer.config.seed)
        self.collective = NetCollective(trainer.config.p, self.timeout)
        if self._spec is not None:
            self.collective.install(self._spec, {})

    def clock(self) -> float:
        if self._t0 is None:
            return 0.0
        return time.perf_counter() - self._t0

    def spawn_rngs(self, n: int) -> List[np.random.Generator]:
        return [np.random.default_rng(s) for s in self._seed_seq.spawn(n)]

    # -- per-step primitives ------------------------------------------------

    def compute(self, lid: int, flops: float, scale: float = 1.0) -> Generator:
        # real math *is* the compute cost; straggle scale is charged by the
        # trainer through fault_sleep (a measured real sleep), not here
        return blocking(_noop)

    def comm(self, lid: int, coroutine: Generator) -> Generator:
        t0 = time.perf_counter()
        result = yield from coroutine
        self._comm_seconds += time.perf_counter() - t0
        return result

    def make_ps(self, size, n_shards, learning_rate, dtype) -> NetParameterServer:
        if self._ps is not None:
            raise RuntimeError("net backend supports one parameter server per run")
        self._ps = NetParameterServer(
            self._ctx, self._trainer.config.p, size, n_shards,
            learning_rate, dtype, self.timeout,
            client_only=self.mode == "worker",
            addrs=self._spec.ps if self._spec is not None else (),
        )
        if self._plan is not None:
            self._ps.install_faults(self._plan, self._retry, self._recovery)
        return self._ps

    def should_record(self, lid: int) -> bool:
        return lid == 0  # only rank 0's tape survives the process boundary

    def note_failure(self, lid: int, step: int) -> None:
        if self._failure is None:
            self._failure = (lid, step)

    # -- fault hooks ---------------------------------------------------------

    def install_faults(self, plan, retry=None, recovery: str = "fail_fast") -> None:
        if recovery == "restart_shard":
            raise BackendCapabilityError(
                "net",
                "restart_shard recovery is not available (shard snapshots "
                "are process-local over sockets); use recovery=elastic or "
                "fail_fast, or run on the mp backend",
            )
        if recovery == "elastic" and self.mode != "fork":
            raise BackendCapabilityError(
                "net",
                "elastic recovery needs the local fork cluster (survivors "
                "are respawned with fresh ports); an externally-launched "
                "cluster cannot be respawned — use recovery=fail_fast",
            )
        # reconnect is accepted on every mode: the resume path needs no
        # respawn.  Only the *degraded* (elastic) fallback does, and respawn
        # itself raises BackendCapabilityError outside fork mode.
        self._plan = plan
        self._retry = retry if retry is not None else RetryPolicy()
        self._recovery = recovery
        if self._ps is not None:
            self._ps.install_faults(self._plan, self._retry, self._recovery)

    def fault_crash(self, lid: int, step: int) -> bool:
        """Planned crash on the real substrate: the worker process dies, no
        farewell — detection is the coordinator's connection-loss monitor."""
        os._exit(_CRASH_EXIT)
        return True  # pragma: no cover - unreachable

    def fault_disconnect(self, lid: int, step: int) -> None:
        """Planned disconnect on the real substrate: sever every TCP
        connection this worker holds — ring, PS shards, control plane — but
        keep the process alive.  Under ``recovery="reconnect"`` the session
        layer re-dials and replays; otherwise the next exchange surfaces
        :class:`ConnectionLost` exactly like an unplanned network cut."""
        self._worker_fault_counts["disconnect"] = (
            self._worker_fault_counts.get("disconnect", 0) + 1
        )
        # emit before cutting: the event frame needs the live ctrl socket
        _events.emit(
            _events.FAULT_INJECTED,
            source=f"learner{lid}",
            t=self.clock(),
            fault="disconnect",
            learner=lid,
            step=step,
        )
        coll = self.collective
        if coll is not None:
            for conn in (coll._next, coll._prev):
                if conn is not None:
                    try:
                        conn.sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
        if self._ps is not None:
            for client in self._ps._clients:
                for conn in list(client._conns.values()):
                    if conn is not None:
                        try:
                            conn.sock.shutdown(socket.SHUT_RDWR)
                        except OSError:
                            pass
        if self._worker_ctrl is not None:
            try:
                self._worker_ctrl.sess.conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def fault_sleep(self, lid: int, seconds: float) -> Generator:
        self._worker_fault_counts["straggle"] = (
            self._worker_fault_counts.get("straggle", 0) + 1
        )
        _events.emit(
            _events.FAULT_INJECTED,
            source=f"learner{lid}",
            fault="straggle",
            seconds=seconds,
        )
        return blocking(time.sleep, seconds)

    def respawn(self) -> "NetBackend":
        if self.mode != "fork":
            raise BackendCapabilityError(
                "net", "only the local fork cluster can be respawned"
            )
        return NetBackend(
            timeout=self.timeout, host=self.host,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            reconnect_deadline=self.reconnect_deadline,
        )

    def attach_processes(self, alive: Dict[int, Callable[[], bool]]) -> None:
        """External mode: per-rank liveness probes for launcher-spawned
        processes (``popen.poll() is None``); manual clusters rely on
        heartbeat staleness alone."""
        self._ext_alive = dict(alive)

    # -- the run driver -----------------------------------------------------

    def run(self, trainer) -> RunStats:
        if self.mode == "worker":
            # an externally-launched rank: trainer.train() landed here via
            # `repro launch --role worker:K`; drive the learner body (HELLO,
            # WELCOME, heartbeats, RESULT/ERROR) and exit the process — the
            # coordinator, not this process, assembles the TrainResult
            _worker_body(trainer, self._task)
            raise SystemExit(0)
        p = trainer.config.p
        n_shards = self._ps.layout.n_shards if self._ps is not None else 0
        fork_mode = self.mode == "fork"
        if fork_mode:
            spec, listeners = allocate_loopback(p, n_shards, host=self.host)
            self._spec, self._listeners = spec, listeners
            self.collective.install(
                spec, {i: listeners[f"worker{i}"] for i in range(p)}
            )
        else:
            spec = self._spec
            if spec is None:
                raise RuntimeError("coordinator mode needs a cluster spec")
            if spec.p != p or spec.n_shards != n_shards:
                raise RuntimeError(
                    f"cluster spec shape ({spec.p} workers, {spec.n_shards} "
                    f"ps) does not match the scenario (p={p}, {n_shards} "
                    "shards)"
                )
            self._listeners = {"coordinator": bind_listener(spec.coordinator)}
        if self._ps is not None:
            self._ps.addrs = tuple(spec.ps)
            if fork_mode:
                self._ps.start(spec.ps, listeners)

        bus = _events.active_bus()
        ps_init = None
        if not fork_mode and self._ps is not None:
            ps = self._ps

            def ps_init(sid: int):
                lo, hi = ps.layout.bounds[sid]
                return (
                    {
                        "lr": float(ps.learning_rate),
                        "lo": int(lo),
                        "crash_after": ps.crash_after.get(sid),
                    },
                    np.ascontiguousarray(ps._x0[lo:hi]),
                )

        if self._recovery == "reconnect" and not self._session:
            self._session = os.urandom(8).hex()
        ctrl = _ControlPlane(
            self._listeners["coordinator"], p,
            expect_ps=0 if fork_mode else n_shards,
            bus=bus, ps_init=ps_init,
            session=self._session, clock=self.clock,
        ).start()
        self._t0 = time.perf_counter()
        planned = self._plan.crash_learners() if self._plan is not None else {}
        disconnects = (
            self._plan.disconnect_learners() if self._plan is not None else {}
        )
        payloads: dict = {}
        errors: dict = {}
        procs: List[multiprocessing.process.BaseProcess] = []
        monitor_stop = threading.Event()

        def _death_events(rank: int, latency: float) -> None:
            self._detections[rank] = latency
            now = self.clock()
            self._fault_events.append(
                (trainer.learner_names[rank], "fault", now)
            )
            # the dying worker could not flush its own stream (os._exit /
            # kill), so the coordinator emits the crash + detection pair
            if rank in planned:
                _events.emit(
                    _events.FAULT_INJECTED,
                    source=trainer.learner_names[rank],
                    t=now,
                    fault="crash",
                    step=planned[rank],
                )
            _events.emit(
                _events.FAILURE_DETECTED,
                t=now,
                learner=rank,
                step=planned.get(rank, disconnects.get(rank)),
                detection_seconds=latency,
                reason=f"control connection to learner{rank} lost without "
                "a farewell",
            )

        def _alive(rank: int) -> Optional[bool]:
            if fork_mode:
                return procs[rank].is_alive() if rank < len(procs) else None
            probe = self._ext_alive.get(rank)
            return probe() if probe is not None else None

        reconnecting = self._recovery == "reconnect"
        grace = self.reconnect_deadline + 1.0
        lost_since: Dict[int, float] = {}

        def _monitor() -> None:
            start = time.monotonic()
            while not monitor_stop.is_set():
                now = time.monotonic()
                deaths: List[Tuple[int, float]] = []
                with ctrl.cond:
                    for rank in range(p):
                        if rank in ctrl.finished or rank in ctrl.dead:
                            lost_since.pop(rank, None)
                            continue
                        seen = ctrl.last_seen.get(rank, start)
                        connected = rank in ctrl.ever_connected
                        lost = connected and rank not in ctrl.conns
                        # a dead process whose connection still drains is
                        # left to the `lost` branch: EOF arrives only after
                        # any final RESULT frame was read, so a clean finish
                        # is never misread as a death
                        died_early = (
                            not connected and _alive(rank) is False
                        )
                        stale = now - seen > self.heartbeat_timeout
                        if not (lost or died_early or stale):
                            lost_since.pop(rank, None)
                            continue
                        # reconnect: a silent-but-alive worker gets the
                        # resume deadline (plus one beat of slack) to
                        # re-attach before it is declared dead; a process
                        # that provably exited is declared immediately
                        if (
                            reconnecting
                            and not died_early
                            and _alive(rank) is not False
                        ):
                            first = lost_since.setdefault(rank, now)
                            if now - first <= grace:
                                continue
                        deaths.append((rank, now - seen))
                        ctrl.dead[rank] = now - seen
                        lost_since.pop(rank, None)
                    if deaths:
                        ctrl.cond.notify_all()
                for rank, latency in deaths:
                    _death_events(rank, latency)
                monitor_stop.wait(_POLL)

        monitor = threading.Thread(
            target=_monitor, name="net-monitor", daemon=True
        )
        try:
            if fork_mode:
                procs = [
                    self._ctx.Process(
                        target=_worker_child_main, args=(trainer, lid),
                        name=trainer.learner_names[lid], daemon=True,
                    )
                    for lid in range(p)
                ]
                for proc in procs:
                    proc.start()
                # children own the ring/shard listening fds now; drop the
                # parent's copies so a dead worker's port refuses, not hangs
                close_all(self._listeners, keep=("coordinator",))
            monitor.start()
            # drain results as they arrive; each payload buys the stragglers
            # a fresh patience budget, and once every still-awaited rank is
            # known dead a short grace ends the wait (mirrors MPBackend.run)
            expected = set(range(p))
            deadline = time.monotonic() + self.timeout + 10.0
            dead_grace: Optional[float] = None
            while expected:
                with ctrl.cond:
                    got = [r for r in expected if r in ctrl.finished]
                    if not got:
                        ctrl.cond.wait(0.25)
                        got = [r for r in expected if r in ctrl.finished]
                    for rank in got:
                        if rank in ctrl.results:
                            payloads[rank] = ctrl.results[rank]
                        else:
                            errors[rank] = ctrl.errors[rank]
                    awaited_dead = all(r in ctrl.dead for r in expected if r not in got)
                for rank in got:
                    expected.discard(rank)
                    deadline = time.monotonic() + self.timeout + 10.0
                if got:
                    dead_grace = None
                    continue
                now = time.monotonic()
                if now > deadline:
                    break
                if expected and awaited_dead:
                    if dead_grace is None:
                        dead_grace = now + _DEAD_GRACE
                    elif now > dead_grace:
                        break
                else:
                    dead_grace = None
            self._duration = time.perf_counter() - self._t0
            for proc in procs:
                proc.join(timeout=_JOIN_GRACE)
        finally:
            monitor_stop.set()
            if monitor.is_alive():
                monitor.join(timeout=2.0)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=_JOIN_GRACE)
            if self._ps is not None:
                self._ps.shutdown()
            ctrl.close()
            close_all(self._listeners)
            self._listeners = {}

        return self._conclude(trainer, p, payloads, errors)

    # -- post-run bookkeeping -------------------------------------------------

    def _conclude(self, trainer, p: int, payloads: dict, errors: dict) -> RunStats:
        for lid in sorted(payloads):
            failed_at = payloads[lid]["failed_at"]
            if failed_at is not None:
                self.note_failure(lid, failed_at)
        for data in list(payloads.values()) + list(errors.values()):
            self._retries_total += int(data.get("retries", 0) or 0)
            self._backoff_total += float(data.get("backoff", 0) or 0)
            for kind, n in (data.get("fault_counts") or {}).items():
                self._fault_counts[kind] = self._fault_counts.get(kind, 0) + n
        if self._ps is not None:
            for kind, n in self._ps.fault_counts.items():
                self._fault_counts[kind] = self._fault_counts.get(kind, 0) + n
            self._fault_events.extend(self._ps.events)

        missing = [
            lid for lid in range(p) if lid not in payloads and lid not in errors
        ]
        # a worker that vanished without any payload was killed outright; a
        # planned crash is labelled from the plan, anything else from the
        # connection wreckage
        planned = self._plan.crash_learners() if self._plan is not None else {}
        disc = self._plan.disconnect_learners() if self._plan is not None else {}
        for lid in missing:
            if self._failure is None:
                self.note_failure(lid, planned.get(lid, disc.get(lid, -1)))
            self._fault_counts["crash"] = self._fault_counts.get("crash", 0) + 1

        if errors or missing:
            if self._failure is not None:
                lid, step = self._failure
                at = f"after {step} local steps" if step >= 0 else "mid-run"
                reason = (
                    f"learner{lid} died {at} (injected failure); its "
                    "connections dropped and the surviving workers "
                    "deadlocked at the next exchange"
                )
                failure = LearnerFailure(lid, step if step >= 0 else None, reason)
                failure.detection_seconds = self._detections.get(lid)
                if lid not in self._detections:
                    # self-declared death (fail_at): the monitor never fired,
                    # so the detection event is emitted here
                    _events.emit(
                        _events.FAILURE_DETECTED,
                        t=self.clock(),
                        learner=lid,
                        step=step if step >= 0 else None,
                        detection_seconds=None,
                        reason=reason,
                    )
                raise failure
            exhausted = [
                lid for lid in sorted(errors)
                if errors[lid].get("retry_exhausted")
            ]
            if exhausted:
                lid = exhausted[0]
                reason = (
                    f"learner{lid} exhausted its parameter-server retry "
                    f"budget ({errors[lid]['error']}); the run deadlocked"
                )
                _events.emit(
                    _events.FAILURE_DETECTED,
                    t=self.clock(),
                    learner=lid,
                    step=None,
                    detection_seconds=None,
                    reason=reason,
                )
                raise RetryBudgetExhausted(
                    lid, int(errors[lid].get("attempts", 0)), reason
                )
            detail = "; ".join(
                f"learner{lid}: {errors[lid]['error']}" for lid in sorted(errors)
            )
            if missing:
                sep = "; " if detail else ""
                detail = f"{detail}{sep}no result from workers {missing}"
            _events.emit(
                _events.FAILURE_DETECTED,
                t=self.clock(),
                learner=None,
                reason=f"net backend run failed ({detail})",
            )
            raise RuntimeError(f"net backend run failed ({detail})")
        data0 = payloads[0]
        trainer.tape.records = data0["records"]
        trainer.tape.samples = data0["samples"]
        trainer.tape.epoch = data0["epoch"]
        trainer.workloads[0].flat.set_data(data0["flat"])
        for lid in sorted(payloads):
            trainer._worker_import(lid, payloads[lid]["export"])
        self._rank_tapes = [
            dict(payloads[lid]["tape_rank"], rank=lid) for lid in sorted(payloads)
        ]

        comm = [payloads[lid]["comm_seconds"] for lid in sorted(payloads)]
        walls = [payloads[lid]["wall_seconds"] for lid in sorted(payloads)]
        mean_comm = float(np.mean(comm)) if comm else 0.0
        mean_wall = float(np.mean(walls)) if walls else 0.0
        extras = {
            "total_bytes": float(sum(payloads[lid]["bytes"] for lid in payloads)),
            "comm_seconds_per_learner": mean_comm,
            "compute_seconds_per_learner": max(0.0, mean_wall - mean_comm),
            "comm_fraction": (mean_comm / mean_wall) if mean_wall > 0 else 0.0,
            "workers": p,
            "rank_tapes": self._rank_tapes,
            "total_samples": int(sum(rt["samples"] for rt in self._rank_tapes)),
            "cluster_spec": self._spec.to_json() if self._spec else None,
        }
        if self._retries_total:
            extras["ps_retries"] = self._retries_total
        if self._backoff_total:
            extras["ps_retry_backoff_seconds"] = self._backoff_total
        return RunStats(duration=self._duration, extras=extras)

    def publish_fault_obs(self, trainer, sess) -> None:
        """Fault/detection metrics alone — safe to emit from a failed run."""
        labels = dict(
            algo=trainer.algorithm, p=trainer.config.p, problem=trainer.problem.name
        )
        for kind, n in sorted(self._fault_counts.items()):
            sess.registry.counter(
                "faults.injected_total", kind=kind, **labels
            ).inc(n)
        if self._detections:
            sess.registry.counter("faults.detected_total", **labels).inc(
                len(self._detections)
            )
            hist = sess.registry.histogram("faults.detection_seconds", **labels)
            for latency in self._detections.values():
                hist.observe(latency)
        if self._retries_total:
            sess.registry.counter("faults.retries_total", **labels).inc(
                self._retries_total
            )
        if self._backoff_total:
            sess.registry.counter(
                "faults.retry_backoff_seconds_total", **labels
            ).inc(self._backoff_total)

    def publish_obs(self, trainer, sess, wall: float) -> None:
        self.publish_fault_obs(trainer, sess)
        labels = dict(
            algo=trainer.algorithm, p=trainer.config.p, problem=trainer.problem.name
        )
        for tape in self._rank_tapes:
            sess.registry.counter(
                "train.samples_total", rank=tape["rank"], **labels
            ).inc(tape["samples"])
            sess.registry.counter(
                "train.batches_total", rank=tape["rank"], **labels
            ).inc(tape["batches"])
        if trainer._obs is not None:
            trainer._obs.finish(trainer.tape.samples, self._duration, wall)
        spans = [
            Span(actor, kind, t, t) for actor, kind, t in self._fault_events
        ]
        sess.add_run(
            f"{trainer.algorithm} {trainer.problem.name} "
            f"p={trainer.config.p} (net)",
            spans,
            [],
            self._duration,
        )
