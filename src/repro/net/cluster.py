"""Cluster topology: who is in the run and where to dial them.

A cluster is described by a JSON document in the classic ps/worker shape
(shifu-tensorflow's ``CLUSTER_SPEC``)::

    {
      "coordinator": "127.0.0.1:7070",
      "worker": ["127.0.0.1:7071", "127.0.0.1:7072"],
      "ps": ["127.0.0.1:7080"]
    }

Each address is where that role *listens*: workers accept their ring
predecessor there, PS shards accept learner clients, the coordinator
accepts everyone's control connection.  A launched process finds its spot
through three environment variables::

    REPRO_CLUSTER_SPEC   the JSON document (or @/path/to/spec.json)
    REPRO_JOB_NAME       "worker" | "ps" | "coordinator"
    REPRO_TASK_ID        index within the role's address list

For single-host runs nobody writes a spec by hand:
:func:`allocate_loopback` binds every listener on ``127.0.0.1:0`` and
reads back the kernel-assigned ports, so the spec is free of port
collisions by construction.  The bound sockets are returned alongside the
spec — the fork-mode backend passes each one to the child that owns it
(fork inherits the listening socket, so there is no close-then-rebind
race); the external launcher closes them and lets each process re-bind
its own address (a small race, acceptable for hand-run loopback demos and
explicit remote specs where ports are fixed anyway).
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .frames import bind_listener, listener_addr

__all__ = [
    "ClusterSpec",
    "allocate_loopback",
    "spec_from_env",
    "role_from_env",
    "ENV_SPEC",
    "ENV_JOB",
    "ENV_TASK",
]

ENV_SPEC = "REPRO_CLUSTER_SPEC"
ENV_JOB = "REPRO_JOB_NAME"
ENV_TASK = "REPRO_TASK_ID"


@dataclass(frozen=True)
class ClusterSpec:
    """Immutable address book for one run."""

    coordinator: str
    workers: Tuple[str, ...]
    ps: Tuple[str, ...] = ()

    @property
    def p(self) -> int:
        return len(self.workers)

    @property
    def n_shards(self) -> int:
        return len(self.ps)

    def to_json(self) -> str:
        return json.dumps(
            {
                "coordinator": self.coordinator,
                "worker": list(self.workers),
                "ps": list(self.ps),
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        doc = json.loads(text)
        try:
            return cls(
                coordinator=doc["coordinator"],
                workers=tuple(doc.get("worker", ())),
                ps=tuple(doc.get("ps", ())),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"malformed cluster spec (need coordinator/worker/ps): {exc}"
            ) from None

    def env(self, job: str, task: int) -> Dict[str, str]:
        """The environment triplet that places one process in this cluster."""
        return {ENV_SPEC: self.to_json(), ENV_JOB: job, ENV_TASK: str(task)}


def allocate_loopback(
    p: int, n_shards: int = 0, host: str = "127.0.0.1"
) -> Tuple[ClusterSpec, Dict[str, socket.socket]]:
    """Bind every role's listener on an ephemeral port and build the spec.

    Returns ``(spec, listeners)`` where ``listeners`` maps role labels
    ("coordinator", "worker0"…, "ps0"…) to live listening sockets bound to
    the addresses in the spec.
    """
    listeners: Dict[str, socket.socket] = {}
    try:
        listeners["coordinator"] = bind_listener(f"{host}:0")
        for i in range(p):
            listeners[f"worker{i}"] = bind_listener(f"{host}:0")
        for s in range(n_shards):
            listeners[f"ps{s}"] = bind_listener(f"{host}:0")
    except OSError:
        for sock in listeners.values():
            sock.close()
        raise
    spec = ClusterSpec(
        coordinator=listener_addr(listeners["coordinator"]),
        workers=tuple(listener_addr(listeners[f"worker{i}"]) for i in range(p)),
        ps=tuple(listener_addr(listeners[f"ps{s}"]) for s in range(n_shards)),
    )
    return spec, listeners


def spec_from_env(environ: Optional[Dict[str, str]] = None) -> ClusterSpec:
    """The cluster spec from ``REPRO_CLUSTER_SPEC`` (inline JSON or @file)."""
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_SPEC)
    if not raw:
        raise ValueError(
            f"{ENV_SPEC} is not set — launch this process through "
            f"`repro launch` or export the cluster spec first"
        )
    if raw.startswith("@"):
        with open(raw[1:], "r", encoding="utf-8") as fh:
            raw = fh.read()
    return ClusterSpec.from_json(raw)


def role_from_env(
    environ: Optional[Dict[str, str]] = None,
) -> Tuple[str, int]:
    """``(job_name, task_id)`` from ``REPRO_JOB_NAME``/``REPRO_TASK_ID``."""
    environ = os.environ if environ is None else environ
    job = environ.get(ENV_JOB, "")
    if job not in ("worker", "ps", "coordinator"):
        raise ValueError(
            f"{ENV_JOB}={job!r} — expected worker, ps, or coordinator"
        )
    try:
        task = int(environ.get(ENV_TASK, ""))
    except ValueError:
        raise ValueError(f"{ENV_TASK} must be an integer task index") from None
    return job, task


def close_all(listeners: Dict[str, socket.socket],
              keep: Tuple[str, ...] = ()) -> None:
    """Close every listener except those named in ``keep`` (child processes
    drop the sockets they don't own right after fork)."""
    for name, sock in listeners.items():
        if name not in keep:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass


def command_lines(spec: ClusterSpec, spec_path: str) -> List[str]:
    """Copy-pasteable per-role shell commands for remote hosts."""
    lines: List[str] = []

    def fmt(job: str, task: int) -> str:
        return (
            f"{ENV_SPEC}='{spec.to_json()}' {ENV_JOB}={job} {ENV_TASK}={task} "
            f"PYTHONPATH=src python -m repro launch {spec_path} --role {job}:{task}"
        )

    lines.append(fmt("coordinator", 0))
    for s in range(spec.n_shards):
        lines.append(fmt("ps", s))
    for i in range(spec.p):
        lines.append(fmt("worker", i))
    return lines
