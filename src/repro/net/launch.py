"""``repro launch`` — bring a scenario up as a real multi-process cluster.

Local loopback (one command, the default)::

    repro launch examples/specs/net_smoke.yml

loads the scenario, allocates a loopback cluster spec (every role on an
ephemeral ``127.0.0.1`` port), spawns one subprocess per worker and PS
shard with the ``REPRO_CLUSTER_SPEC``/``REPRO_JOB_NAME``/``REPRO_TASK_ID``
environment triplet, runs the coordinator inline, and prints the result.

Remote / by-hand (two terminals, or N hosts)::

    repro launch SPEC --print-commands    # emits one command per role
    # paste each line into its own terminal/host, coordinator first

Each printed command is self-contained: the cluster spec rides in the
environment, and ``--role job:task`` tells the process which seat to take.
A role process rebuilds the *same* trainer from the *same* scenario file —
determinism comes from the spec, not from forked memory — then either
serves a PS shard (:func:`repro.net.backend.run_ps_role`), drives one
learner (worker), or supervises the run and assembles the result
(coordinator).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from typing import Dict, List, Optional, Tuple

from .backend import NetBackend, run_ps_role
from .cluster import (
    ClusterSpec,
    allocate_loopback,
    close_all,
    command_lines,
    spec_from_env,
)

__all__ = ["launch", "parse_role"]

_ROLE_JOBS = ("coordinator", "worker", "ps")


def parse_role(text: str) -> Tuple[str, int]:
    """``"worker:1"`` → ``("worker", 1)`` (``"coordinator"`` implies task 0)."""
    job, _, task = text.partition(":")
    if job not in _ROLE_JOBS:
        raise ValueError(
            f"unknown role {job!r} (expected coordinator, worker:K, or ps:K)"
        )
    if not task:
        task = "0"
    if not task.isdigit():
        raise ValueError(f"role task must be an integer, got {task!r}")
    return job, int(task)


def _load_net_scenario(spec_path: str):
    """The scenario document, forced onto the net backend and validated."""
    from ..spec import load_spec

    spec = load_spec(spec_path)
    if spec.mode == "experiment":
        raise ValueError(
            "repro launch runs custom scenarios (problem/algorithm/config); "
            f"{spec_path} names an experiment family — use `repro run` for it"
        )
    if spec.backend != "net":
        spec = spec.with_overrides(backend="net")
    return spec


def _shard_count(spec) -> int:
    """How many PS shards the scenario's trainer will ask for (0 = none)."""
    from ..spec import registry as reg

    options_cls = reg.TRAINERS.meta(spec.algorithm).get("options")
    if options_cls is None:
        return 0
    return int(getattr(options_cls(**spec.options), "n_shards", 0))


def _run_coordinator(
    spec,
    cluster: ClusterSpec,
    timeout: float,
    procs: Optional[Dict[Tuple[str, int], subprocess.Popen]] = None,
) -> int:
    from ..harness import format_result
    from ..spec.compile import run_custom

    backend = NetBackend(mode="coordinator", spec=cluster, timeout=timeout)
    if procs:
        backend.attach_processes(
            {
                task: (lambda pr: lambda: pr.poll() is None)(proc)
                for (job, task), proc in procs.items()
                if job == "worker"
            }
        )
    result = run_custom(spec, backend=backend)
    print(format_result(result))
    return 0


def _reap(procs: Dict[Tuple[str, int], subprocess.Popen], grace: float) -> None:
    for proc in procs.values():
        try:
            proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def launch(
    spec_path: str,
    role: Optional[str] = None,
    print_commands: bool = False,
    timeout: float = 120.0,
    host: str = "127.0.0.1",
) -> int:
    """The ``repro launch`` driver; returns a process exit code."""
    spec = _load_net_scenario(spec_path)

    if role is not None:
        # one seat of an already-described cluster: addresses from the env
        cluster = spec_from_env()
        job, task = parse_role(role)
        if job == "ps":
            if not 0 <= task < cluster.n_shards:
                raise ValueError(
                    f"ps task {task} out of range (spec has {cluster.n_shards})"
                )
            run_ps_role(cluster, task, timeout=timeout)
            return 0
        if job == "worker":
            if not 0 <= task < cluster.p:
                raise ValueError(
                    f"worker task {task} out of range (spec has {cluster.p})"
                )
            from ..spec.compile import _build_trainer

            backend = NetBackend(
                mode="worker", spec=cluster, task=task, timeout=timeout
            )
            trainer = _build_trainer(spec, backend=backend)
            try:
                trainer.train()  # worker-mode run() exits the process
            except SystemExit:
                pass
            return 0
        return _run_coordinator(spec, cluster, timeout)

    # no role: this process owns the whole cluster
    p = int(spec.config.get("p", 1))
    n_shards = _shard_count(spec)
    cluster, listeners = allocate_loopback(p, n_shards, host=host)
    # the subprocesses (and coordinator mode itself) bind their own spec
    # addresses — release the allocation probes first.  The tiny window in
    # which another process could steal a port is acceptable on loopback.
    close_all(listeners)

    if print_commands:
        print("# one command per role — run each in its own terminal/host,")
        print("# coordinator first (it hosts the rendezvous):")
        for line in command_lines(cluster, spec_path):
            print(line)
        return 0

    procs: Dict[Tuple[str, int], subprocess.Popen] = {}
    watchdog_stop = threading.Event()

    def _watchdog() -> None:
        # a role that exits non-zero can never rejoin the run: tear the rest
        # of the cluster down instead of letting the rendezvous (or a ring
        # exchange) wait out the full timeout on its corpse
        while not watchdog_stop.wait(0.25):
            dead = [
                (jt, proc.returncode)
                for jt, proc in procs.items()
                if proc.poll() is not None and proc.returncode != 0
            ]
            if not dead:
                continue
            names = ", ".join(
                f"{job}:{task} (exit {rc})" for (job, task), rc in dead
            )
            print(
                f"launch: role process died: {names}; "
                "tearing down the cluster",
                file=sys.stderr,
            )
            for proc in procs.values():
                if proc.poll() is None:
                    proc.terminate()
            return

    watchdog = threading.Thread(
        target=_watchdog, name="launch-watchdog", daemon=True
    )
    try:
        for job, task in [("ps", s) for s in range(n_shards)] + [
            ("worker", i) for i in range(p)
        ]:
            env = dict(os.environ)
            env.update(cluster.env(job, task))
            procs[(job, task)] = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "launch",
                    spec_path,
                    "--role",
                    f"{job}:{task}",
                    "--timeout",
                    str(timeout),
                ],
                env=env,
            )
        watchdog.start()
        try:
            code = _run_coordinator(spec, cluster, timeout, procs)
        except RuntimeError as exc:
            # LearnerFailure / RetryBudgetExhausted / a failed rendezvous:
            # report it as a launch failure, not a traceback
            print(f"launch failed: {exc}", file=sys.stderr)
            code = 1
    finally:
        watchdog_stop.set()
        if watchdog.is_alive():
            watchdog.join(timeout=2.0)
        _reap(procs, grace=5.0)
        failed: List[str] = [
            f"{job}:{task} (exit {proc.returncode})"
            for (job, task), proc in sorted(procs.items())
            if proc.returncode not in (0, None)
        ]
        if failed:
            print(
                f"note: role processes exited non-zero: {', '.join(failed)}",
                file=sys.stderr,
            )
    if code == 0 and failed:
        # every role must finish cleanly for the launch to count as a success
        code = 1
    return code
