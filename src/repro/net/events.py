"""Socket event streaming: the live run feed over the framed protocol.

:class:`TcpEventSink` is a :class:`repro.obs.events.Sink` that listens on a
TCP address and pushes every event to every connected subscriber, one EVENT
frame per record.  It keeps its own :class:`RunSnapshot`, so a subscriber
that attaches mid-run first receives one SNAPSHOT event (state so far) and
then live deltas — the same snapshot+delta protocol the JSONL recorder and
``repro watch`` already speak, carried over sockets instead of a file.

Wiring::

    repro run --spec S --events tcp://127.0.0.1:7900   # publisher
    repro watch --connect 127.0.0.1:7900               # live view, any host

:func:`iter_remote_events` is the subscriber side: a generator of decoded
:class:`~repro.obs.events.Event` records that ends when the publisher
closes (run over) — ``repro watch --connect`` folds it into a snapshot
view exactly as it folds a recorder file.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterator, List, Optional

from ..obs import events as _events
from .frames import (
    EVENT,
    Conn,
    ConnectionLost,
    ProtocolError,
    bind_listener,
    connect,
    listener_addr,
)

__all__ = ["TcpEventSink", "iter_remote_events", "strip_scheme"]


def strip_scheme(addr: str) -> str:
    """``tcp://host:port`` → ``host:port`` (bare ``host:port`` passes through)."""
    return addr[6:] if addr.startswith("tcp://") else addr


class TcpEventSink(_events.Sink):
    """Publish the event stream to TCP subscribers (snapshot + deltas).

    Subscribers may come and go at any time; a dead subscriber is dropped
    at the next emit (a slow or vanished watcher never stalls the run).
    Bind to port 0 to let the kernel pick — :attr:`addr` reports where the
    sink actually listens.
    """

    def __init__(self, addr: str) -> None:
        self._listener = bind_listener(strip_scheme(addr))
        self.addr = listener_addr(self._listener)
        self._lock = threading.Lock()
        self._subs: List[Conn] = []
        self._snapshot = _events.RunSnapshot()
        self._closing = False
        self._listener.settimeout(0.25)
        self._thread = threading.Thread(
            target=self._accept_loop, name="tcp-event-sink", daemon=True
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn = Conn(sock, "subscriber")
            with self._lock:
                # bootstrap: the whole run so far in one frame, then deltas
                snap = _events.Event(
                    kind=_events.SNAPSHOT,
                    data=self._snapshot.to_dict(),
                    source="sink",
                    t=self._snapshot.clock,
                    seq=self._snapshot.seq,
                )
                try:
                    conn.send(EVENT, snap.to_dict())
                except ConnectionLost:
                    conn.close()
                    continue
                self._subs.append(conn)

    # -- Sink API ------------------------------------------------------------

    def emit(self, event: _events.Event) -> None:
        with self._lock:
            self._snapshot.apply(event)
            record = event.to_dict()
            dead: List[Conn] = []
            for conn in self._subs:
                try:
                    conn.send(EVENT, record)
                except ConnectionLost:
                    dead.append(conn)
            for conn in dead:
                self._subs.remove(conn)
                conn.close()

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            subs, self._subs = self._subs, []
        for conn in subs:
            conn.close()


def iter_remote_events(
    addr: str, timeout: float = 10.0, idle_timeout: Optional[float] = None
) -> Iterator[_events.Event]:
    """Subscribe to a :class:`TcpEventSink` and yield decoded events.

    Ends when the publisher closes the stream (run finished) or, with
    ``idle_timeout``, when nothing arrives for that long.  ``timeout``
    bounds the initial connect (the publisher may not be up yet).
    """
    conn = connect(strip_scheme(addr), "events", timeout=timeout)
    conn.settimeout(idle_timeout)
    try:
        while True:
            try:
                frame = conn.recv()
            except (ConnectionLost, socket.timeout):
                return
            except ProtocolError:
                return
            if frame.kind != EVENT:
                continue
            try:
                yield _events.Event.from_dict(frame.meta)
            except (KeyError, TypeError, ValueError):
                continue
    finally:
        conn.close()
