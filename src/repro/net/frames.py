"""The length-prefixed framed wire protocol every ``repro.net`` socket speaks.

One frame = a fixed binary header + a JSON meta blob + an opaque payload::

    !2sBBQII  =  magic  version  kind  seq  meta_len  payload_len
    (2)  (1)  (1)  (8)  (4)  (4)        -> 20 bytes, network byte order

* ``magic``/``version`` reject foreign or incompatible peers at the first
  frame instead of corrupting state mid-run.
* ``kind`` is one small-integer frame type (:data:`KIND_NAMES`), so a
  receiver can dispatch without parsing the meta.
* ``seq`` is a per-sender stream position.  The parameter-server protocol
  reuses it as the request sequence number its retry + dedupe machinery
  keys on; collective rings use it as a cheap desync tripwire.
* ``meta`` is a small JSON dict (dtype/shape for tensors, op/rank for PS
  requests, the event record for telemetry frames).
* ``payload`` is raw bytes.  Tensor frames put the numpy buffer here
  verbatim — sent straight out of the array's memory with ``sendall`` and
  received into a fresh writable buffer, no pickling on the hot path.
  Control frames carry a pickle (:func:`send_obj`) or nothing.

Failure surfaces as :class:`ConnectionLost` carrying the *labeled* peer
("learner2", "ps0", "coordinator"), so a dead process is named — TCP gives
the detection for free: a killed peer's sockets close and every blocked
``recv`` on them returns EOF/ECONNRESET within milliseconds.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "Frame",
    "Conn",
    "ConnectionLost",
    "ProtocolError",
    "HELLO",
    "WELCOME",
    "DATA",
    "PS_REQ",
    "PS_REP",
    "RESULT",
    "ERROR",
    "EVENT",
    "HEARTBEAT",
    "STOP",
    "STATS",
    "RESUME",
    "RESUME_OK",
    "KIND_NAMES",
    "SessionConn",
    "SessionUnrecoverable",
    "REPLAY_MAX_FRAMES",
    "REPLAY_MAX_BYTES",
    "connect",
    "bind_listener",
    "parse_addr",
]

MAGIC = b"rN"
PROTOCOL_VERSION = 1
_HEADER = struct.Struct("!2sBBQII")

# frame kinds (one byte on the wire)
HELLO = 1      # role announcement: worker/ps -> coordinator
WELCOME = 2    # rendezvous complete: coordinator -> role (cluster + run meta)
DATA = 3       # collective payload on the learner ring
PS_REQ = 4     # push/pull/elastic request: learner -> shard
PS_REP = 5     # shard reply (answers PS_REQ seq)
RESULT = 6     # worker's final payload: worker -> coordinator
ERROR = 7      # worker's failure payload: worker -> coordinator
EVENT = 8      # one repro.obs.events record: worker -> coordinator / sink
HEARTBEAT = 9  # liveness stamp: worker -> coordinator
STOP = 10      # drain request: coordinator -> shard
STATS = 11     # shard's final slice + counters (answers STOP)
RESUME = 12    # session re-attach: reconnecting peer -> survivor
RESUME_OK = 13  # re-attach accepted: survivor -> peer (last seq processed)

KIND_NAMES = {
    HELLO: "hello",
    WELCOME: "welcome",
    DATA: "data",
    PS_REQ: "ps_req",
    PS_REP: "ps_rep",
    RESULT: "result",
    ERROR: "error",
    EVENT: "event",
    HEARTBEAT: "heartbeat",
    STOP: "stop",
    STATS: "stats",
    RESUME: "resume",
    RESUME_OK: "resume_ok",
}

#: metas stay small; payloads (tensors) are bounded by the model size.  The
#: caps only exist to fail fast on a desynced/garbage stream instead of
#: attempting a multi-gigabyte allocation from a corrupt length field.
_MAX_META = 16 * 1024 * 1024
_MAX_PAYLOAD = 1 << 34


class ProtocolError(RuntimeError):
    """The peer spoke something other than this protocol (or a different
    version of it) — bad magic, bad version, oversized length fields."""


class ConnectionLost(ConnectionError):
    """The TCP connection to a labeled peer died (EOF or reset).

    ``peer`` is the role label of the other end ("learner2", "ps0",
    "coordinator") — the failure-detection path turns it into the typed
    :class:`~repro.runtime.LearnerFailure` naming the victim.
    """

    def __init__(self, peer: str, detail: str = "connection lost") -> None:
        super().__init__(f"{detail} ({peer})")
        self.peer = peer


class Frame:
    """One received frame: ``kind``, ``seq``, ``meta`` dict, raw payload."""

    __slots__ = ("kind", "seq", "meta", "payload")

    def __init__(self, kind: int, seq: int, meta: Dict[str, Any],
                 payload: bytearray) -> None:
        self.kind = kind
        self.seq = seq
        self.meta = meta
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Frame({KIND_NAMES.get(self.kind, self.kind)}, seq={self.seq}, "
            f"meta={self.meta!r}, {len(self.payload)}B)"
        )

    def tensor(self) -> np.ndarray:
        """The payload as the array described by meta ``dtype``/``shape``.

        Zero-copy: a writable view over the receive buffer (the buffer is
        freshly allocated per frame, so aliasing is safe).
        """
        arr = np.frombuffer(self.payload, dtype=np.dtype(self.meta["dtype"]))
        return arr.reshape(self.meta.get("shape", arr.shape))

    def obj(self) -> Any:
        """The payload unpickled (RESULT/ERROR/STATS control frames)."""
        return pickle.loads(bytes(self.payload))


def parse_addr(addr: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``."""
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected host:port, got {addr!r}")
    return host, int(port)


def bind_listener(addr: str, backlog: int = 64) -> socket.socket:
    """A listening TCP socket on ``addr`` (``host:0`` picks a free port)."""
    host, port = parse_addr(addr)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


def listener_addr(sock: socket.socket) -> str:
    host, port = sock.getsockname()[:2]
    return f"{host}:{port}"


def connect(
    addr: str,
    peer: str,
    timeout: float = 10.0,
    retry_interval: float = 0.05,
) -> "Conn":
    """Connect to ``addr``, retrying refused connections until ``timeout``.

    Bootstrap ordering is unknowable (a learner may dial its ring successor
    or a PS shard before that process reaches ``listen``), so connection
    refused is retried on a short interval; anything still down after
    ``timeout`` raises :class:`ConnectionLost`.
    """
    import time

    host, port = parse_addr(addr)
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return Conn(sock, peer)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise ConnectionLost(
                    peer, f"could not connect to {addr} within {timeout}s: {exc}"
                ) from None
            time.sleep(retry_interval)


class Conn:
    """One framed TCP connection to a labeled peer.

    Send is serialised by a lock so multiple threads (a worker's heartbeat
    thread and its main loop, a sink fanning out events) can share the
    connection without interleaving frames.  Receive is single-reader.
    """

    def __init__(self, sock: socket.socket, peer: str) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = sock
        self.peer = peer
        self._send_lock = threading.Lock()
        self._seq = 0

    # -- sending -------------------------------------------------------------

    def _send(self, kind: int, meta: Optional[Dict[str, Any]], payload,
              seq: Optional[int]) -> int:
        meta_blob = (
            json.dumps(meta, separators=(",", ":")).encode() if meta else b""
        )
        with self._send_lock:
            if seq is None:
                self._seq += 1
                seq = self._seq
            header = _HEADER.pack(
                MAGIC, PROTOCOL_VERSION, kind, seq, len(meta_blob), len(payload)
            )
            try:
                # small frames coalesce into one segment; tensor payloads go
                # straight from the array's buffer (sendall on a memoryview)
                self.sock.sendall(header + meta_blob)
                if len(payload):
                    self.sock.sendall(payload)
            except (OSError, ValueError) as exc:
                raise ConnectionLost(self.peer, f"send failed: {exc}") from None
        return seq

    def send(self, kind: int, meta: Optional[Dict[str, Any]] = None,
             seq: Optional[int] = None) -> int:
        """Send a payload-free control frame; returns the seq used."""
        return self._send(kind, meta, b"", seq)

    def send_tensor(self, kind: int, array: np.ndarray,
                    meta: Optional[Dict[str, Any]] = None,
                    seq: Optional[int] = None) -> int:
        """Send ``array`` zero-copy: dtype/shape in meta, buffer as payload."""
        array = np.ascontiguousarray(array)
        meta = dict(meta or {})
        meta["dtype"] = array.dtype.str
        meta["shape"] = list(array.shape)
        return self._send(kind, meta, memoryview(array).cast("B"), seq)

    def send_obj(self, kind: int, obj: Any,
                 meta: Optional[Dict[str, Any]] = None,
                 seq: Optional[int] = None) -> int:
        """Send a pickled object (results, errors, shard stats)."""
        return self._send(kind, meta, pickle.dumps(obj, protocol=4), seq)

    # -- receiving -----------------------------------------------------------

    def _recv_exact(self, n: int) -> bytearray:
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            try:
                k = self.sock.recv_into(view[got:], n - got)
            except socket.timeout:
                raise
            except OSError as exc:
                raise ConnectionLost(self.peer, f"recv failed: {exc}") from None
            if k == 0:
                raise ConnectionLost(self.peer, "peer closed the connection")
            got += k
        return buf

    def recv(self) -> Frame:
        """Read exactly one frame (blocking; honours the socket timeout —
        ``socket.timeout`` propagates so callers can drive retry logic)."""
        header = self._recv_exact(_HEADER.size)
        magic, version, kind, seq, meta_len, payload_len = _HEADER.unpack(
            bytes(header)
        )
        if magic != MAGIC:
            raise ProtocolError(
                f"{self.peer}: bad frame magic {bytes(magic)!r} "
                f"(not a repro.net peer?)"
            )
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"{self.peer}: protocol version {version} != "
                f"{PROTOCOL_VERSION} (upgrade one side)"
            )
        if meta_len > _MAX_META or payload_len > _MAX_PAYLOAD:
            raise ProtocolError(
                f"{self.peer}: implausible frame lengths meta={meta_len} "
                f"payload={payload_len} (desynced stream)"
            )
        meta = (
            json.loads(bytes(self._recv_exact(meta_len))) if meta_len else {}
        )
        payload = self._recv_exact(payload_len) if payload_len else bytearray()
        return Frame(kind, seq, meta, payload)

    # -- plumbing ------------------------------------------------------------

    def settimeout(self, seconds: Optional[float]) -> None:
        self.sock.settimeout(seconds)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


#: Replay-buffer bounds per SessionConn.  A lockstep trainer keeps the
#: un-acked window tiny (a handful of frames), so these caps exist to bound
#: a pathological peer, not to be hit in healthy runs — overflow marks the
#: session unrecoverable and the reconnect policy degrades to elastic.
REPLAY_MAX_FRAMES = 64
REPLAY_MAX_BYTES = 64 * 1024 * 1024


class SessionUnrecoverable(RuntimeError):
    """The session cannot be resumed: the peer needs frames that have been
    evicted from the replay buffer (or the buffer itself overflowed)."""


class SessionConn:
    """A :class:`Conn` wrapper whose seq stream survives socket replacement.

    The session — not the socket — owns the seq counter and a bounded replay
    buffer of sent frames.  When the underlying TCP connection dies, a fresh
    socket is swapped in with :meth:`adopt` and the peers run the
    RESUME/RESUME_OK handshake: the reconnecting side reports the session
    token, the surviving side answers with the last seq it *processed*, and
    :meth:`replay_from` re-sends everything newer.  This heals TCP's silent
    first-send loss (a send into a peer-closed socket can succeed into the
    kernel buffer and vanish).

    HEARTBEAT frames and handshake frames (explicit ``seq=0``) are not
    recorded — only session-stream frames are replayable.  ``release(seq)``
    drops acknowledged prefixes so lockstep protocols keep the buffer tiny.
    """

    def __init__(self, conn: Conn, session: str = "") -> None:
        self._conn = conn
        self.peer = conn.peer
        self.session = session
        self._lock = threading.Lock()
        self._seq = 0
        self._replay: list = []  # [(seq, kind, meta, payload bytes)]
        self._replay_bytes = 0
        self.last_recv_seq = 0
        self.broken = False

    # -- session-stream sending ----------------------------------------------

    def _record_and_send(self, kind: int, meta, payload) -> int:
        with self._lock:
            if kind == HEARTBEAT:
                # liveness stamps ride outside the session stream (seq 0):
                # they are never replayed, and numbering them would punch
                # benign holes in the replay buffer's contiguity
                self._conn._send(kind, meta, payload, 0)
                return 0
            self._seq += 1
            seq = self._seq
            blob = bytes(payload) if len(payload) else b""
            self._replay.append((seq, kind, dict(meta or {}), blob))
            self._replay_bytes += len(blob)
            while (
                len(self._replay) > REPLAY_MAX_FRAMES
                or self._replay_bytes > REPLAY_MAX_BYTES
            ):
                _, _, _, old = self._replay.pop(0)
                self._replay_bytes -= len(old)
                self.broken = True
            self._conn._send(kind, meta, payload, seq)
        return seq

    def send(self, kind: int, meta: Optional[Dict[str, Any]] = None) -> int:
        return self._record_and_send(kind, meta, b"")

    def send_tensor(self, kind: int, array: np.ndarray,
                    meta: Optional[Dict[str, Any]] = None) -> int:
        array = np.ascontiguousarray(array)
        meta = dict(meta or {})
        meta["dtype"] = array.dtype.str
        meta["shape"] = list(array.shape)
        return self._record_and_send(kind, meta, memoryview(array).cast("B"))

    def send_obj(self, kind: int, obj: Any,
                 meta: Optional[Dict[str, Any]] = None) -> int:
        return self._record_and_send(kind, meta, pickle.dumps(obj, protocol=4))

    # -- session-stream receiving --------------------------------------------

    def recv(self) -> Frame:
        frame = self._conn.recv()
        if frame.seq > self.last_recv_seq:
            self.last_recv_seq = frame.seq
        return frame

    # -- resume plumbing -----------------------------------------------------

    def release(self, seq: int) -> None:
        """Drop buffered frames with seq <= ``seq`` (peer acknowledged)."""
        with self._lock:
            while self._replay and self._replay[0][0] <= seq:
                _, _, _, blob = self._replay.pop(0)
                self._replay_bytes -= len(blob)

    def adopt(self, conn: Conn) -> None:
        """Swap in a fresh socket; seq counter and replay buffer carry over."""
        with self._lock:
            old, self._conn = self._conn, conn
            self.peer = conn.peer
        old.close()

    def replay_from(self, last_processed: int) -> int:
        """Re-send every buffered frame with seq > ``last_processed``.

        Returns how many frames were replayed.  Raises
        :class:`SessionUnrecoverable` when the peer needs a frame that has
        been evicted (its gap can never be filled).
        """
        with self._lock:
            pending = [f for f in self._replay if f[0] > last_processed]
            # the session stream is contiguous (heartbeats ride at seq 0), so
            # every frame in (last_processed, _seq] must still be buffered
            need = max(0, self._seq - last_processed)
            if len(pending) < need:
                raise SessionUnrecoverable(
                    f"{self.peer}: peer resumed at seq {last_processed} but "
                    f"{need - len(pending)} newer frame(s) were evicted from "
                    f"the replay buffer"
                )
            for seq, kind, meta, blob in pending:
                self._conn._send(kind, meta, blob, seq)
        return len(pending)

    # -- passthrough ---------------------------------------------------------

    @property
    def sock(self) -> socket.socket:
        return self._conn.sock

    @property
    def conn(self) -> Conn:
        return self._conn

    def settimeout(self, seconds: Optional[float]) -> None:
        self._conn.settimeout(seconds)

    def close(self) -> None:
        self._conn.close()
