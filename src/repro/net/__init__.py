"""repro.net — distributed execution over TCP sockets.

The third :mod:`repro.runtime` backend: learners and parameter-server
shards are separate OS processes (potentially on separate hosts) that
discover each other through a JSON cluster spec and speak a versioned,
length-prefixed framed protocol (:mod:`repro.net.frames`).

* :class:`NetBackend` — drives the same trainers as ``sim``/``mp``; local
  loopback clusters fork themselves, external clusters bootstrap from
  ``REPRO_CLUSTER_SPEC`` (:mod:`repro.net.cluster`).
* :func:`~repro.net.launch.launch_local` / ``repro launch`` — spawn every
  role of a scenario spec as separate processes on loopback, or print the
  per-role commands for remote hosts.
* :class:`~repro.net.events.TcpEventSink` — stream the live event feed
  (snapshot + deltas) to TCP subscribers; ``repro watch --connect``
  attaches to it.
"""

from .frames import (
    Conn,
    ConnectionLost,
    Frame,
    ProtocolError,
    PROTOCOL_VERSION,
    bind_listener,
    connect,
    parse_addr,
)
from .cluster import (
    ClusterSpec,
    allocate_loopback,
    role_from_env,
    spec_from_env,
)
from .backend import NetBackend, NetCollective, NetParameterServer, run_ps_role

__all__ = [
    "PROTOCOL_VERSION",
    "Frame",
    "Conn",
    "ConnectionLost",
    "ProtocolError",
    "connect",
    "bind_listener",
    "parse_addr",
    "ClusterSpec",
    "allocate_loopback",
    "spec_from_env",
    "role_from_env",
    "NetBackend",
    "NetCollective",
    "NetParameterServer",
    "run_ps_role",
]
