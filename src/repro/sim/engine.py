"""Discrete-event simulation engine.

The engine drives *virtual time*: processes are plain Python generators that
``yield`` commands (:class:`Delay`, :class:`Event`, :class:`Process`, ...) and
are resumed by the engine when the command completes.  All simulated
concurrency in :mod:`repro` — learners computing on GPUs, messages crossing
PCIe links, parameter-server shards applying gradient pushes — is expressed as
engine processes, so the *ordering* of side effects (e.g. which stale gradient
reaches the server first) is exactly the ordering of virtual completion times.

The design intentionally mirrors a small subset of SimPy:

* deterministic: ties in virtual time break by scheduling order (a strict
  FIFO per timestamp, equivalent to the monotone sequence number of the
  original implementation), so a seeded run is bit-reproducible;
* cheap: the calendar is *bucketed* — a dict of timestamp → FIFO list plus a
  heap of the distinct timestamps — so a wave of simultaneous resumes (a
  1024-rank collective step, a barrier release) costs one heap pop for the
  whole wave instead of one per resume, and a resume into an existing bucket
  is a plain list append with no heap traffic at all;
* composable: helper coroutines use ``yield from`` so communication layers can
  be layered (collectives over point-to-point over links) without callbacks.

Every scheduling record is allocation-light: :class:`Delay` and the calendar
entries carry no instance ``__dict__`` (``__slots__`` / plain tuples), and a
``Delay`` instance is inert after construction so hot loops may build one and
re-yield it every iteration ("allocation-free Delay reuse").  The dominant
resume case — a process yielding a ``Delay`` — is dispatched on an exact type
check and scheduled inline, skipping the generic command dispatch.

The pre-optimisation engine is preserved verbatim in
:mod:`repro.sim.reference` so ``repro bench`` reports an honest
``engine_speedup_vs_legacy`` and the equivalence tests can assert the batched
calendar replays the identical schedule.

Example
-------
>>> eng = Engine()
>>> out = []
>>> def worker(name, dt):
...     yield Delay(dt)
...     out.append((eng.now, name))
>>> _ = eng.spawn(worker("slow", 2.0))
>>> _ = eng.spawn(worker("fast", 1.0))
>>> eng.run()
>>> out
[(1.0, 'fast'), (2.0, 'slow')]
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Delay",
    "Engine",
    "Event",
    "Process",
    "SimulationError",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (negative delays, re-trigger...)."""


class Delay:
    """Command: suspend the yielding process for ``duration`` virtual seconds.

    Instances are inert once built — the engine only reads ``duration`` — so a
    hot loop with a fixed step may construct one Delay and yield it every
    iteration without per-event allocation.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise SimulationError(f"negative delay: {duration!r}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay({self.duration!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Delay) and other.duration == self.duration

    def __hash__(self) -> int:
        return hash((Delay, self.duration))


class Event:
    """A one-shot condition processes can wait on.

    A process waits by yielding the event; :meth:`trigger` wakes every waiter
    (in wait order) and hands them ``value`` as the result of the ``yield``.
    """

    __slots__ = ("engine", "_value", "_triggered", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._waiters: list["Process"] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters at the current virtual time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._schedule_resume(proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self.engine._schedule_resume(proc, self._value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A running coroutine inside the engine.

    The wrapped generator may yield:

    * :class:`Delay` — sleep for virtual time,
    * :class:`Event` — wait until triggered; ``yield`` returns its value,
    * :class:`Process` — wait for another process; returns its result,
    * ``None`` — yield the scheduler without advancing time (resumed
      immediately, after already-scheduled same-time events).

    When the generator returns, :attr:`result` holds its return value and
    :attr:`done_event` fires.
    """

    __slots__ = ("engine", "gen", "name", "result", "done_event", "_finished", "error")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._finished = False
        self.done_event = Event(engine, name=f"done:{self.name}")

    @property
    def finished(self) -> bool:
        return self._finished

    def _step(self, send_value: Any) -> None:
        engine = self.engine
        try:
            command = self.gen.send(send_value)
        except StopIteration as stop:
            self.result = stop.value
            self._finished = True
            self.done_event.trigger(stop.value)
            return
        except BaseException as exc:
            self.error = exc
            self._finished = True
            engine._crashed(self, exc)
            return

        # Fast path: the overwhelmingly common command is an exact Delay, and
        # duration was validated non-negative at construction — schedule the
        # resume inline on the calendar without generic dispatch.
        if command.__class__ is Delay:
            t = engine._now + command.duration
            bucket = engine._buckets.get(t)
            if bucket is None:
                engine._buckets[t] = [(self, None)]
                heappush(engine._times, t)
            else:
                bucket.append((self, None))
            engine._pending += 1
            if engine._pending > engine.max_heap_depth:
                engine.max_heap_depth = engine._pending
        elif command is None:
            engine._schedule_resume(self, None)
        elif isinstance(command, Event):
            command._add_waiter(self)
        elif isinstance(command, Process):
            command.done_event._add_waiter(self)
        elif isinstance(command, Delay):  # a Delay subclass: generic path
            engine._schedule_resume(self, None, delay=command.duration)
        else:
            exc = SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )
            self.error = exc
            self._finished = True
            engine._crashed(self, exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"<Process {self.name!r} {state}>"


def AllOf(engine: "Engine", events: Iterable[Event]) -> Generator:
    """Coroutine helper: wait for every event; returns their values in order."""
    values = []
    for ev in events:
        values.append((yield ev))
    return values


def AnyOf(engine: "Engine", events: Iterable[Event]) -> Generator:
    """Coroutine helper: wait until any event fires; returns (index, value)."""
    events = list(events)
    done = Event(engine, name="anyof")
    fired = {}

    def watcher(idx: int, ev: Event) -> Generator:
        value = yield ev
        if not done.triggered:
            fired["hit"] = (idx, value)
            done.trigger((idx, value))

    for idx, ev in enumerate(events):
        engine.spawn(watcher(idx, ev), name=f"anyof-w{idx}")
    result = yield done
    return result


class Engine:
    """The event loop: owns the virtual clock and the bucketed event calendar.

    The calendar is a dict ``timestamp -> [(process, value), ...]`` plus a
    min-heap of the distinct timestamps.  Scheduling appends to the bucket
    (creating it — and pushing its timestamp — only on first use); running
    pops one timestamp and drains its whole bucket in FIFO order.  Resumes
    scheduled *at the current timestamp while its bucket drains* (zero-delay
    yields, event triggers) open a fresh bucket for the same timestamp, which
    is popped next — exactly the (time, sequence-number) order of the
    original per-item heap, so seeded runs replay bit-identically.
    """

    __slots__ = (
        "_now",
        "_times",
        "_buckets",
        "_pending",
        "_crashes",
        "on_crash",
        "events_processed",
        "max_heap_depth",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._times: list[float] = []  # heap of distinct scheduled timestamps
        self._buckets: dict[float, list] = {}  # timestamp -> FIFO of (proc, value)
        self._pending = 0  # scheduled-but-unprocessed resumes
        self._crashes: list[tuple[Process, BaseException]] = []
        self.on_crash: Optional[Callable[[Process, BaseException], None]] = None
        # scheduling statistics, kept as cheap ints the observability layer
        # reads after the run (no per-event hook, no callback)
        self.events_processed = 0
        self.max_heap_depth = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a coroutine; it takes its first step at the current time."""
        proc = Process(self, gen, name=name)
        self._schedule_resume(proc, None)
        return proc

    def timeout_event(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that self-triggers ``delay`` seconds from now."""
        ev = Event(self, name=name or f"timeout+{delay:g}")

        def _fire() -> Generator:
            yield Delay(delay)
            ev.trigger(value)

        self.spawn(_fire(), name=ev.name)
        return ev

    # -- scheduling internals ------------------------------------------------

    def _schedule_resume(self, proc: Process, value: Any, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        t = self._now + delay
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = [(proc, value)]
            heappush(self._times, t)
        else:
            bucket.append((proc, value))
        self._pending += 1
        if self._pending > self.max_heap_depth:
            self.max_heap_depth = self._pending

    def _crashed(self, proc: Process, exc: BaseException) -> None:
        self._crashes.append((proc, exc))
        if self.on_crash is not None:
            self.on_crash(proc, exc)
        else:
            raise exc

    # -- running -------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event calendar.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left at
            ``until``).  ``None`` runs until no work remains.
        max_events:
            Safety valve for runaway simulations; raises if exceeded.

        Returns the final virtual time.
        """
        times = self._times
        buckets = self._buckets
        count = 0
        while times:
            t = times[0]
            if until is not None and t > until:
                self._now = until
                return self._now
            heappop(times)
            if t < self._now:
                raise SimulationError("clock went backwards")
            self._now = t
            bucket = buckets.pop(t)
            # Same-timestamp resumes scheduled during this drain open a fresh
            # bucket under t (popped next iteration), preserving FIFO order.
            if max_events is None:
                for proc, value in bucket:
                    proc._step(value)
                n = len(bucket)
            else:
                n = 0
                for proc, value in bucket:
                    proc._step(value)
                    n += 1
                    if count + n > max_events:
                        self._pending -= n
                        self.events_processed += n
                        raise SimulationError(f"exceeded max_events={max_events}")
            count += n
            self._pending -= n
            self.events_processed += n
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def stats(self) -> dict:
        """Scheduling statistics for the observability layer."""
        return {
            "events_processed": self.events_processed,
            "max_heap_depth": self.max_heap_depth,
            "virtual_seconds": self._now,
        }

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen``, run to completion, and return its result."""
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.finished:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        if proc.error is not None:
            raise proc.error
        return proc.result
