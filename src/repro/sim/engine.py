"""Discrete-event simulation engine.

The engine drives *virtual time*: processes are plain Python generators that
``yield`` commands (:class:`Delay`, :class:`Event`, :class:`Process`, ...) and
are resumed by the engine when the command completes.  All simulated
concurrency in :mod:`repro` — learners computing on GPUs, messages crossing
PCIe links, parameter-server shards applying gradient pushes — is expressed as
engine processes, so the *ordering* of side effects (e.g. which stale gradient
reaches the server first) is exactly the ordering of virtual completion times.

The design intentionally mirrors a small subset of SimPy:

* deterministic: ties in virtual time break by a monotone sequence number, so
  a seeded run is bit-reproducible;
* cheap: scheduling is a single binary-heap push/pop per resume, which keeps
  the engine overhead negligible next to the NumPy gradient math;
* composable: helper coroutines use ``yield from`` so communication layers can
  be layered (collectives over point-to-point over links) without callbacks.

Example
-------
>>> eng = Engine()
>>> out = []
>>> def worker(name, dt):
...     yield Delay(dt)
...     out.append((eng.now, name))
>>> _ = eng.spawn(worker("slow", 2.0))
>>> _ = eng.spawn(worker("fast", 1.0))
>>> eng.run()
>>> out
[(1.0, 'fast'), (2.0, 'slow')]
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Delay",
    "Engine",
    "Event",
    "Process",
    "SimulationError",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (negative delays, re-trigger...)."""


@dataclass(frozen=True)
class Delay:
    """Command: suspend the yielding process for ``duration`` virtual seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"negative delay: {self.duration!r}")


class Event:
    """A one-shot condition processes can wait on.

    A process waits by yielding the event; :meth:`trigger` wakes every waiter
    (in wait order) and hands them ``value`` as the result of the ``yield``.
    """

    __slots__ = ("engine", "_value", "_triggered", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._waiters: list["Process"] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters at the current virtual time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._schedule_resume(proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self.engine._schedule_resume(proc, self._value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A running coroutine inside the engine.

    The wrapped generator may yield:

    * :class:`Delay` — sleep for virtual time,
    * :class:`Event` — wait until triggered; ``yield`` returns its value,
    * :class:`Process` — wait for another process; returns its result,
    * ``None`` — yield the scheduler without advancing time (resumed
      immediately, after already-scheduled same-time events).

    When the generator returns, :attr:`result` holds its return value and
    :attr:`done_event` fires.
    """

    __slots__ = ("engine", "gen", "name", "result", "done_event", "_finished", "error")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._finished = False
        self.done_event = Event(engine, name=f"done:{self.name}")

    @property
    def finished(self) -> bool:
        return self._finished

    def _step(self, send_value: Any) -> None:
        engine = self.engine
        try:
            command = self.gen.send(send_value)
        except StopIteration as stop:
            self.result = stop.value
            self._finished = True
            self.done_event.trigger(stop.value)
            return
        except BaseException as exc:
            self.error = exc
            self._finished = True
            engine._crashed(self, exc)
            return

        if command is None:
            engine._schedule_resume(self, None)
        elif isinstance(command, Delay):
            engine._schedule_resume(self, None, delay=command.duration)
        elif isinstance(command, Event):
            command._add_waiter(self)
        elif isinstance(command, Process):
            command.done_event._add_waiter(self)
        else:
            exc = SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )
            self.error = exc
            self._finished = True
            engine._crashed(self, exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"<Process {self.name!r} {state}>"


def AllOf(engine: "Engine", events: Iterable[Event]) -> Generator:
    """Coroutine helper: wait for every event; returns their values in order."""
    values = []
    for ev in events:
        values.append((yield ev))
    return values


def AnyOf(engine: "Engine", events: Iterable[Event]) -> Generator:
    """Coroutine helper: wait until any event fires; returns (index, value)."""
    events = list(events)
    done = Event(engine, name="anyof")
    fired = {}

    def watcher(idx: int, ev: Event) -> Generator:
        value = yield ev
        if not done.triggered:
            fired["hit"] = (idx, value)
            done.trigger((idx, value))

    for idx, ev in enumerate(events):
        engine.spawn(watcher(idx, ev), name=f"anyof-w{idx}")
    result = yield done
    return result


@dataclass(order=True)
class _ScheduledItem:
    time: float
    seq: int
    proc: Process = field(compare=False)
    value: Any = field(compare=False, default=None)


class Engine:
    """The event loop: owns the virtual clock and the scheduled-resume heap."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_ScheduledItem] = []
        self._crashes: list[tuple[Process, BaseException]] = []
        self.on_crash: Optional[Callable[[Process, BaseException], None]] = None
        # scheduling statistics, kept as cheap ints the observability layer
        # reads after the run (no per-event hook, no callback)
        self.events_processed = 0
        self.max_heap_depth = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a coroutine; it takes its first step at the current time."""
        proc = Process(self, gen, name=name)
        self._schedule_resume(proc, None)
        return proc

    def timeout_event(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that self-triggers ``delay`` seconds from now."""
        ev = Event(self, name=name or f"timeout+{delay:g}")

        def _fire() -> Generator:
            yield Delay(delay)
            ev.trigger(value)

        self.spawn(_fire(), name=ev.name)
        return ev

    # -- scheduling internals ------------------------------------------------

    def _schedule_resume(self, proc: Process, value: Any, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._seq += 1
        heapq.heappush(
            self._heap, _ScheduledItem(self._now + delay, self._seq, proc, value)
        )
        if len(self._heap) > self.max_heap_depth:
            self.max_heap_depth = len(self._heap)

    def _crashed(self, proc: Process, exc: BaseException) -> None:
        self._crashes.append((proc, exc))
        if self.on_crash is not None:
            self.on_crash(proc, exc)
        else:
            raise exc

    # -- running -------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left at
            ``until``).  ``None`` runs until no work remains.
        max_events:
            Safety valve for runaway simulations; raises if exceeded.

        Returns the final virtual time.
        """
        count = 0
        while self._heap:
            item = self._heap[0]
            if until is not None and item.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if item.time < self._now:
                raise SimulationError("clock went backwards")
            self._now = item.time
            item.proc._step(item.value)
            count += 1
            self.events_processed += 1
            if max_events is not None and count > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def stats(self) -> dict:
        """Scheduling statistics for the observability layer."""
        return {
            "events_processed": self.events_processed,
            "max_heap_depth": self.max_heap_depth,
            "virtual_seconds": self._now,
        }

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen``, run to completion, and return its result."""
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.finished:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        if proc.error is not None:
            raise proc.error
        return proc.result
