"""Synchronisation primitives built on the event engine.

Three primitives cover everything the cluster model needs:

* :class:`Resource` — a counted semaphore with FIFO hand-off.  A PCIe link is
  a ``Resource(capacity=1)``; holding it for ``bytes / bandwidth`` seconds
  serialises competing transfers, which is how parameter-server congestion on
  the narrow host channel arises in the Fig. 1 reproduction.
* :class:`Store` — an unbounded FIFO queue of items with blocking ``get``.
  Endpoint mailboxes in :mod:`repro.comm.fabric` are stores.
* :class:`Barrier` — a reusable p-party rendezvous, used by bulk-synchronous
  phases in tests (the production SASGD path synchronises through the
  allreduce itself, not a separate barrier).

All waiting is FIFO and deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from .engine import Engine, Event, SimulationError

__all__ = ["Resource", "Store", "Barrier"]


class Resource:
    """Counted semaphore with FIFO granting.

    Usage from a process coroutine::

        yield from link.acquire()
        try:
            yield Delay(nbytes / bandwidth)
        finally:
            link.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # accounting for utilisation traces
        self.total_wait_time = 0.0
        self.total_hold_time = 0.0
        self._grant_times: dict[int, float] = {}

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator:
        """Coroutine: blocks until a slot is free, then takes it."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return
        gate = self.engine.event(name=f"acq:{self.name}")
        self._waiters.append(gate)
        t0 = self.engine.now
        yield gate
        self.total_wait_time += self.engine.now - t0
        # the releasing side already transferred the slot to us

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # hand the slot directly to the next waiter (count unchanged)
            gate = self._waiters.popleft()
            gate.trigger(None)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO queue with blocking ``get`` (coroutine) and eager ``put``."""

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            gate = self._getters.popleft()
            gate.trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Generator:
        """Coroutine: returns the oldest item, blocking if empty."""
        if self._items:
            return self._items.popleft()
        gate = self.engine.event(name=f"get:{self.name}")
        self._getters.append(gate)
        item = yield gate
        return item

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop; returns ``(found, item)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class Barrier:
    """Reusable rendezvous for a fixed party count.

    ``yield from barrier.wait()`` blocks until all ``parties`` processes have
    arrived; the barrier then resets for the next round.  Returns the 0-based
    generation number that was completed.
    """

    def __init__(self, engine: Engine, parties: int, name: str = "") -> None:
        if parties < 1:
            raise SimulationError(f"parties must be >= 1, got {parties}")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._generation = 0
        self._gate = engine.event(name=f"bar:{name}:0")

    @property
    def generation(self) -> int:
        return self._generation

    def wait(self) -> Generator:
        self._arrived += 1
        if self._arrived == self.parties:
            gen = self._generation
            gate = self._gate
            self._arrived = 0
            self._generation += 1
            self._gate = self.engine.event(name=f"bar:{self.name}:{self._generation}")
            gate.trigger(gen)
            return gen
        gen = yield self._gate
        return gen
