"""Discrete-event simulation substrate.

Provides the virtual-time engine (:class:`~repro.sim.engine.Engine`),
synchronisation primitives (:class:`~repro.sim.resources.Resource`,
:class:`~repro.sim.resources.Store`, :class:`~repro.sim.resources.Barrier`)
and timeline tracing (:class:`~repro.sim.trace.Tracer`) that every simulated
cluster component runs on.
"""

from .engine import AllOf, AnyOf, Delay, Engine, Event, Process, SimulationError
from .resources import Barrier, Resource, Store
from .trace import CATEGORY_BUCKETS, EpochBreakdown, Span, Tracer, bucket_for

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "CATEGORY_BUCKETS",
    "Delay",
    "Engine",
    "EpochBreakdown",
    "Event",
    "Process",
    "Resource",
    "SimulationError",
    "Span",
    "Store",
    "Tracer",
    "bucket_for",
]
