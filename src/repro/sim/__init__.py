"""Discrete-event simulation substrate.

Provides the virtual-time engine (:class:`~repro.sim.engine.Engine`),
synchronisation primitives (:class:`~repro.sim.resources.Resource`,
:class:`~repro.sim.resources.Store`, :class:`~repro.sim.resources.Barrier`)
and timeline tracing (:class:`~repro.sim.trace.Tracer`) that every simulated
cluster component runs on.
"""

from .engine import AllOf, AnyOf, Delay, Engine, Event, Process, SimulationError
from .resources import Barrier, Resource, Store
from .trace import EpochBreakdown, Span, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Delay",
    "Engine",
    "EpochBreakdown",
    "Event",
    "Process",
    "Resource",
    "SimulationError",
    "Span",
    "Store",
    "Tracer",
]
