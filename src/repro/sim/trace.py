"""Timeline tracing for epoch-time breakdowns.

The paper's Figs. 1, 4, 5 and 6 are all *time accounting* figures: how much of
a learner's epoch is computation vs communication, and how epoch time scales
with learner count and aggregation interval T.  :class:`Tracer` records tagged
intervals per actor (one actor per learner/server) and aggregates them into
exactly those breakdowns.

Interval categories used across the codebase:

* ``"compute"``     — forward/backward of a minibatch on the device,
* ``"comm"``        — any time spent in sends/recvs/collectives, including
  waiting for peers (the paper's definition: "sending its computed gradients
  ..., waiting for the server to aggregate ..., and receiving parameters"),
* ``"apply"``       — optimiser math (folded into compute in reports),
* anything else     — reported under its own tag.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Generator, Iterable, List, Optional

from .engine import Engine

__all__ = ["Span", "Tracer", "EpochBreakdown", "CATEGORY_BUCKETS", "bucket_for"]

#: Span category -> report bucket.  The single place where "apply" (optimiser
#: math) folds into the compute bucket; both the breakdown report below and
#: the Chrome trace exporter (:mod:`repro.obs.trace_export`) use this mapping,
#: so a new category only needs registering here to be bucketed consistently.
CATEGORY_BUCKETS: Dict[str, str] = {
    "compute": "compute",
    "apply": "compute",
    "comm": "comm",
}


def bucket_for(category: str) -> str:
    """Report bucket for a span category (unknown categories are their own)."""
    return CATEGORY_BUCKETS.get(category, category)


@dataclass(frozen=True, slots=True)
class Span:
    """One closed interval of an actor's timeline."""

    actor: str
    category: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class EpochBreakdown:
    """Aggregated per-category seconds for one actor over a window."""

    actor: str
    seconds: Dict[str, float]
    span: float  # wall (virtual) time of the window

    def bucket_seconds(self, bucket: str) -> float:
        return sum(
            sec for cat, sec in self.seconds.items() if bucket_for(cat) == bucket
        )

    @property
    def compute_seconds(self) -> float:
        return self.bucket_seconds("compute")

    @property
    def comm_seconds(self) -> float:
        return self.bucket_seconds("comm")

    @property
    def comm_fraction(self) -> float:
        busy = self.compute_seconds + self.comm_seconds
        return self.comm_seconds / busy if busy > 0 else 0.0


class Tracer:
    """Records spans; cheap enough to leave on for every simulation."""

    def __init__(self, engine: Engine, enabled: bool = True) -> None:
        self.engine = engine
        self.enabled = enabled
        self.spans: List[Span] = []
        self._open: Dict[tuple, float] = {}

    def begin(self, actor: str, category: str) -> None:
        if not self.enabled:
            return
        key = (actor, category)
        if key in self._open:
            raise RuntimeError(f"span already open: {key}")
        self._open[key] = self.engine.now

    def end(self, actor: str, category: str) -> None:
        if not self.enabled:
            return
        key = (actor, category)
        start = self._open.pop(key)
        self.spans.append(Span(actor, category, start, self.engine.now))

    def timed(self, actor: str, category: str, coroutine: Generator) -> Generator:
        """Wrap a coroutine so its whole execution is recorded as one span."""
        self.begin(actor, category)
        try:
            result = yield from coroutine
        finally:
            self.end(actor, category)
        return result

    # -- aggregation ---------------------------------------------------------

    def breakdown(
        self,
        actor: str,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> EpochBreakdown:
        """Per-category busy seconds for ``actor`` clipped to ``[start, end]``."""
        if end is None:
            end = self.engine.now
        seconds: Dict[str, float] = defaultdict(float)
        for span in self.spans:
            if span.actor != actor:
                continue
            lo = max(span.start, start)
            hi = min(span.end, end)
            if hi > lo:
                seconds[span.category] += hi - lo
        return EpochBreakdown(actor=actor, seconds=dict(seconds), span=end - start)

    def actors(self) -> List[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.actor, None)
        return list(seen)

    def mean_breakdown(
        self,
        actors: Iterable[str],
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> EpochBreakdown:
        """Average the per-category seconds over several actors (learners).

        Single pass over the span list — at p=1024 learners the per-actor
        :meth:`breakdown` loop would rescan the full list p times.
        """
        order = list(actors)
        if not order:
            raise ValueError("no actors given")
        if end is None:
            end = self.engine.now
        # Accumulate per actor first, then fold in actor order: the same
        # float-summation order as the per-actor breakdown() loop this
        # replaced, so golden-pinned results stay bit-identical.
        per_actor: Dict[str, Dict[str, float]] = {a: defaultdict(float) for a in order}
        for span in self.spans:
            seconds = per_actor.get(span.actor)
            if seconds is None:
                continue
            lo = span.start if span.start > start else start
            hi = span.end if span.end < end else end
            if hi > lo:
                seconds[span.category] += hi - lo
        total: Dict[str, float] = defaultdict(float)
        for actor in order:
            for cat, sec in per_actor[actor].items():
                total[cat] += sec
        mean = {cat: sec / len(order) for cat, sec in total.items()}
        return EpochBreakdown(actor="<mean>", seconds=mean, span=end - start)
