"""The pre-optimisation discrete-event engine, preserved verbatim.

This is the engine exactly as it shipped before the large-p performance
pass (PR 7) vectorised the live :mod:`repro.sim.engine`: a single binary
heap of per-resume ``_ScheduledItem`` dataclass records, one push/pop per
resume.  It exists for the same reason :mod:`repro.nn.reference` keeps the
naive conv kernels — so ``repro bench`` reports an honest
"vs the code this PR replaced" speedup (``engine_speedup_vs_legacy``)
instead of a strawman, and so the equivalence tests can assert the batched
calendar produces bit-identical schedules.

Do not use this in production code; import :class:`repro.sim.Engine`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

__all__ = ["LegacyDelay", "LegacyEngine", "LegacyEvent", "LegacyProcess"]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (negative delays, re-trigger...)."""


@dataclass(frozen=True)
class LegacyDelay:
    """Command: suspend the yielding process for ``duration`` virtual seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"negative delay: {self.duration!r}")


class LegacyEvent:
    """A one-shot condition processes can wait on (pre-PR implementation)."""

    __slots__ = ("engine", "_value", "_triggered", "_waiters", "name")

    def __init__(self, engine: "LegacyEngine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._waiters: list["LegacyProcess"] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._schedule_resume(proc, value)

    def _add_waiter(self, proc: "LegacyProcess") -> None:
        if self._triggered:
            self.engine._schedule_resume(proc, self._value)
        else:
            self._waiters.append(proc)


class LegacyProcess:
    """A running coroutine inside the legacy engine."""

    __slots__ = ("engine", "gen", "name", "result", "done_event", "_finished", "error")

    def __init__(self, engine: "LegacyEngine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._finished = False
        self.done_event = LegacyEvent(engine, name=f"done:{self.name}")

    @property
    def finished(self) -> bool:
        return self._finished

    def _step(self, send_value: Any) -> None:
        engine = self.engine
        try:
            command = self.gen.send(send_value)
        except StopIteration as stop:
            self.result = stop.value
            self._finished = True
            self.done_event.trigger(stop.value)
            return
        except BaseException as exc:
            self.error = exc
            self._finished = True
            engine._crashed(self, exc)
            return

        if command is None:
            engine._schedule_resume(self, None)
        elif isinstance(command, LegacyDelay):
            engine._schedule_resume(self, None, delay=command.duration)
        elif isinstance(command, LegacyEvent):
            command._add_waiter(self)
        elif isinstance(command, LegacyProcess):
            command.done_event._add_waiter(self)
        else:
            exc = SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )
            self.error = exc
            self._finished = True
            engine._crashed(self, exc)


@dataclass(order=True)
class _ScheduledItem:
    time: float
    seq: int
    proc: LegacyProcess = field(compare=False)
    value: Any = field(compare=False, default=None)


class LegacyEngine:
    """The pre-PR event loop: one heap push/pop of a dataclass per resume."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_ScheduledItem] = []
        self._crashes: list[tuple[LegacyProcess, BaseException]] = []
        self.on_crash: Optional[Callable[[LegacyProcess, BaseException], None]] = None
        self.events_processed = 0
        self.max_heap_depth = 0

    @property
    def now(self) -> float:
        return self._now

    def event(self, name: str = "") -> LegacyEvent:
        return LegacyEvent(self, name=name)

    def spawn(self, gen: Generator, name: str = "") -> LegacyProcess:
        proc = LegacyProcess(self, gen, name=name)
        self._schedule_resume(proc, None)
        return proc

    def _schedule_resume(
        self, proc: LegacyProcess, value: Any, delay: float = 0.0
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._seq += 1
        heapq.heappush(
            self._heap, _ScheduledItem(self._now + delay, self._seq, proc, value)
        )
        if len(self._heap) > self.max_heap_depth:
            self.max_heap_depth = len(self._heap)

    def _crashed(self, proc: LegacyProcess, exc: BaseException) -> None:
        self._crashes.append((proc, exc))
        if self.on_crash is not None:
            self.on_crash(proc, exc)
        else:
            raise exc

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        count = 0
        while self._heap:
            item = self._heap[0]
            if until is not None and item.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if item.time < self._now:
                raise SimulationError("clock went backwards")
            self._now = item.time
            item.proc._step(item.value)
            count += 1
            self.events_processed += 1
            if max_events is not None and count > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.finished:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        if proc.error is not None:
            raise proc.error
        return proc.result
