"""Elastic recovery: survivors restart from the last checkpoint and finish.

The policy is restart-based parallel-restarted averaging: when a learner
dies mid-run (a planned crash, a real ``SIGKILL``, or an exhausted retry
budget), the surviving ``p − 1`` learners re-form as a smaller collective,
reload the last globally consistent checkpoint, and continue to the
original epoch target.  SASGD's ``γ_p = γ/√p`` rescales automatically with
the shrunken ``p`` (``SASGDOptions.gamma_p=None``), so the theory knob the
paper ties to the learner count tracks membership for free.

The loop lives outside the trainers: ``DistributedTrainer.train()``
dispatches here when the active :class:`~repro.faults.FaultContext` says
``recovery="elastic"``.  Each attempt gets a *fresh* backend (the old one's
collective may reference dead processes or a consumed simulation) and the
survivor's fault plan — the crash that already fired is consumed, so
restarts don't re-die on schedule.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from ..runtime.api import LearnerFailure
from ..spec.registry import RECOVERY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algos.base import TrainResult
    from ..algos.distributed import DistributedTrainer

__all__ = ["elastic_train", "reconnect_train", "ElasticGaveUp"]

# fail_fast and restart_shard have no driver function: the first is the
# trainers' default propagate-the-failure behaviour, the second is handled
# inside the parameter-server supervisor.
RECOVERY.register(
    "fail_fast", None, allow_none=True,
    description="first learner failure propagates (default)",
)
RECOVERY.register(
    "restart_shard", None, allow_none=True,
    description="respawn dead PS shards from their periodic snapshots",
)


class ElasticGaveUp(LearnerFailure):
    """Elastic recovery ran out of restarts (or learners) and surrendered."""

    def __init__(self, cause: LearnerFailure, restarts: int, p: int) -> None:
        super().__init__(
            cause.learner_id,
            cause.step,
            f"elastic recovery gave up after {restarts} restart(s) "
            f"with {p} learner(s) left: {cause}",
        )
        self.cause = cause
        self.restarts = restarts


@RECOVERY.register(
    "elastic",
    description="survivors restart from the last checkpoint as a smaller collective",
)
def elastic_train(trainer: "DistributedTrainer") -> "TrainResult":
    """Run ``trainer`` to completion, shrinking the collective on failure.

    Drives ``trainer._train_once()`` (one full attempt on one backend); on
    :class:`LearnerFailure` it rebuilds the trainer with ``p − 1`` learners
    resuming from the latest checkpoint and tries again, up to
    ``ctx.max_restarts`` times or until fewer than ``ctx.min_learners``
    remain.  Returns the successful attempt's :class:`TrainResult`; the
    total restart count is recorded on the surviving trainer's obs metrics.
    """
    return _restart_loop(trainer, action="elastic_restart")


@RECOVERY.register(
    "reconnect",
    description="(net) disconnected learners re-attach to the live session; "
    "degrades to elastic when the deadline expires",
)
def reconnect_train(trainer: "DistributedTrainer") -> "TrainResult":
    """Session-resumable recovery with elastic degradation.

    The in-run half lives in the backend: under ``recovery="reconnect"`` the
    net backend keeps a disconnected learner's seat open for
    ``reconnect_deadline`` seconds, resumes its session (replaying un-acked
    frames), and ``_train_once()`` simply completes with all ``p`` learners
    — no restart, no trainer-visible failure.  This driver only handles the
    *degraded* path: when resume fails (deadline expired, replay buffer
    evicted, or the learner really died) the surfaced
    :class:`LearnerFailure` drops into the same shrink-and-restart loop as
    ``elastic``, labelled ``reconnect_degraded`` in the event stream.
    """
    return _restart_loop(trainer, action="reconnect_degraded")


def _restart_loop(trainer: "DistributedTrainer", action: str) -> "TrainResult":
    ctx = trainer.fault_ctx
    assert ctx is not None and ctx.recovery in ("elastic", "reconnect")
    current = trainer
    restarts = 0
    while True:
        try:
            return current._train_once()
        except LearnerFailure as failure:
            q = current.config.p - 1
            if restarts >= ctx.max_restarts or q < ctx.min_learners:
                raise ElasticGaveUp(failure, restarts, current.config.p)
            restarts += 1
            survivor_ctx = replace(
                ctx,
                plan=ctx.plan.survivor_plan(failure.learner_id),
                resume=True,
            )
            _note_recovery(current, failure, restarts, q, action)
            current = current.rebuild(p=q, fault_ctx=survivor_ctx)


def _note_recovery(
    trainer: "DistributedTrainer",
    failure: LearnerFailure,
    restarts: int,
    q: int,
    action: str = "elastic_restart",
) -> None:
    """Emit the recovery decision as obs metrics on the failed attempt."""
    from .. import obs
    from ..obs import events as _events

    _events.emit(
        _events.RECOVERY_ACTION,
        t=trainer.backend.clock(),
        action=action,
        failed_learner=failure.learner_id,
        survivors=q,
        restarts=restarts,
    )
    sess = obs.active()
    if sess is None:
        return
    reg = sess.registry
    reg.counter("faults.recoveries_total", action=action).inc()
    reg.gauge("faults.survivor_learners").set(float(q))
    reg.counter("faults.restarts_total").inc()
    if failure.detection_seconds is not None:
        reg.histogram("faults.detection_seconds").observe(
            failure.detection_seconds
        )
