"""Ambient fault/recovery configuration, mirroring ``use_backend``.

A :class:`FaultContext` bundles everything fault-related a run needs: the
:class:`~repro.faults.plan.FaultPlan` to execute, which recovery policy to
apply when a learner dies, where checkpoints go, how often to write them,
and whether to resume from the latest one.  Trainers pick it up either
explicitly (``fault_ctx=``) or ambiently via :func:`use_faults` — the CLI
route::

    with use_faults(FaultContext(plan=FaultPlan.parse("crash:learner=2,step=40"),
                                 recovery="elastic")):
        run_experiment("fig2", ...)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional

from .checkpoint import CheckpointStore, open_store
from .plan import FaultPlan

__all__ = ["FaultContext", "use_faults", "resolve_fault_context", "RECOVERY_POLICIES"]

RECOVERY_POLICIES = ("fail_fast", "elastic", "restart_shard", "reconnect")


@dataclass
class FaultContext:
    """One run's fault model + recovery configuration.

    ``recovery``:

    ``fail_fast`` (default)
        Today's behaviour — the first :class:`LearnerFailure` propagates.
    ``elastic``
        On learner death, the surviving ``p−1`` learners restart from the
        last checkpoint as a smaller collective and finish the run
        (parallel-restarted averaging).  SASGD's γ_p = γ/√p rescales
        automatically with the new p.
    ``restart_shard``
        On parameter-server shard death, respawn the shard from its last
        periodic snapshot and keep the learners running (Downpour-style).
    ``reconnect``
        (net backend) A learner that loses its TCP connections re-attaches
        to the live session within ``reconnect_deadline`` and replays
        un-acked frames — no respawn, all ``p`` learners survive.  When the
        deadline expires or the session is unrecoverable, degrades to
        ``elastic`` (``p−1`` survivors restart from the last checkpoint).
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    recovery: str = "fail_fast"
    store: Optional[CheckpointStore] = None
    checkpoint_every: int = 1      # sync intervals between checkpoints
    resume: bool = False           # start from store.latest(key) if present
    max_restarts: int = 3          # elastic restart budget per run
    min_learners: int = 1          # below this, elastic gives up

    def __post_init__(self) -> None:
        # lazy: recovery.py registers the policies, and importing it here at
        # module level would cycle through repro.runtime
        from ..spec.registry import RECOVERY

        from . import recovery as _recovery  # noqa: F401  (registration side effect)

        RECOVERY.get(self.recovery)
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.store is None and (
            self.recovery != "fail_fast" or self.resume
        ):
            # recovery and resume both need somewhere to keep checkpoints
            self.store = open_store(None)

    def with_plan(self, plan: FaultPlan) -> "FaultContext":
        return replace(self, plan=plan)

    @property
    def wants_checkpoints(self) -> bool:
        return self.store is not None


# Stack of ambient fault contexts installed by use_faults().
_ACTIVE: List[FaultContext] = []


@contextmanager
def use_faults(ctx: FaultContext) -> Iterator[FaultContext]:
    """Install ``ctx`` as the ambient fault context for the block.

    Every trainer constructed inside the block without an explicit
    ``fault_ctx=`` picks it up.  Nests; the previous context is restored on
    exit.
    """
    _ACTIVE.append(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE.pop()


def resolve_fault_context(ctx: Optional[FaultContext] = None) -> Optional[FaultContext]:
    """Explicit context > innermost :func:`use_faults` > None (no faults)."""
    if ctx is not None:
        return ctx
    if _ACTIVE:
        return _ACTIVE[-1]
    return None
