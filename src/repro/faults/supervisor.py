"""Liveness supervision primitives for the multiprocessing backend.

The pre-fault ``MPBackend`` used ``multiprocessing.Barrier`` with a long
timeout: a dead rank meant every peer blocked for the full timeout (120 s by
default) before anyone learned anything, and the barrier object broke
permanently on the first timeout.  This module replaces that with a small
shared-memory **liveness block** plus a **polling barrier**:

* each worker runs a daemon heartbeat thread stamping a wall-clock value
  into its slot every ``heartbeat_interval`` seconds;
* the parent runs a :class:`WorkerMonitor` thread that declares a rank dead
  when its process exits or its heartbeat goes stale, and raises a flag in
  shared memory;
* :class:`PollingBarrier` replaces ``mp.Barrier``: ranks publish monotone
  per-round arrival counters and spin (with a short sleep) until all peers
  arrive, a dead flag is raised, or the deadline passes — so a killed peer
  is noticed within roughly one heartbeat timeout rather than the full
  barrier timeout, and the barrier survives any number of failed rounds.

Everything here is dependency-pure (stdlib + numpy) so
``repro.runtime.mp_backend`` can import it without cycles.
"""

from __future__ import annotations

import threading
import time
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "LivenessBlock",
    "PollingBarrier",
    "HeartbeatThread",
    "WorkerMonitor",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
]

DEFAULT_HEARTBEAT_INTERVAL = 0.25   # seconds between worker stamps
# Stale threshold before declaring death.  Deliberately generous: on a
# loaded single-core CI box a healthy worker's heartbeat thread can be
# starved for a second or two, and a false positive kills the run.  Real
# process deaths are caught by the process-exit probe within one monitor
# poll (~0.1 s) regardless, so this only bounds detection of *hangs*.
DEFAULT_HEARTBEAT_TIMEOUT = 5.0

_ALIVE = 0
_DEAD = 1


class LivenessBlock:
    """Shared-memory liveness state for ``p`` ranks.

    Layout (all little-endian, fixed order):

    * ``heartbeats``  float64[p] — wall-clock of each rank's last stamp
    * ``dead``        int64[p]   — 0 alive, 1 declared dead (by the monitor
      or by the rank itself on injected crash)
    * ``dead_step``   int64[p]   — local steps completed when death was
      declared (−1 unknown)
    * ``finished``    int64[p]   — 1 once the rank completed normally; the
      monitor must not declare a finished rank dead just because its
      process exited
    * ``arrivals``    one int64[p] lane per named barrier — monotone round
      counters for :class:`PollingBarrier`

    The parent creates the block before forking; workers inherit the open
    mapping across ``fork`` (or attach by name).
    """

    def __init__(self, p: int, barrier_lanes: Sequence[str],
                 name: Optional[str] = None) -> None:
        self.p = p
        self.lanes = list(barrier_lanes)
        n_words = p + p + p + p + p * len(self.lanes)
        nbytes = 8 * n_words
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        buf = self._shm.buf
        off = 0
        self.heartbeats = np.ndarray((p,), dtype=np.float64, buffer=buf, offset=off)
        off += 8 * p
        self.dead = np.ndarray((p,), dtype=np.int64, buffer=buf, offset=off)
        off += 8 * p
        self.dead_step = np.ndarray((p,), dtype=np.int64, buffer=buf, offset=off)
        off += 8 * p
        self.finished = np.ndarray((p,), dtype=np.int64, buffer=buf, offset=off)
        off += 8 * p
        self.arrivals: Dict[str, np.ndarray] = {}
        for lane in self.lanes:
            self.arrivals[lane] = np.ndarray(
                (p,), dtype=np.int64, buffer=buf, offset=off
            )
            off += 8 * p
        if self._owner:
            now = time.monotonic()
            self.heartbeats[:] = now
            self.dead[:] = _ALIVE
            self.dead_step[:] = -1
            self.finished[:] = 0
            for lane in self.lanes:
                self.arrivals[lane][:] = 0

    @property
    def name(self) -> str:
        return self._shm.name

    # -- state transitions ---------------------------------------------------

    def stamp(self, rank: int) -> None:
        self.heartbeats[rank] = time.monotonic()

    def declare_dead(self, rank: int, step: int = -1) -> None:
        if self.dead[rank] == _ALIVE:
            self.dead_step[rank] = step
            self.dead[rank] = _DEAD

    def is_dead(self, rank: int) -> bool:
        return bool(self.dead[rank] == _DEAD)

    def mark_finished(self, rank: int) -> None:
        """Worker declares it completed normally (set before exiting)."""
        self.finished[rank] = 1

    def is_finished(self, rank: int) -> bool:
        return bool(self.finished[rank] == 1)

    def first_dead(self, exclude: Optional[int] = None) -> Optional[int]:
        for rank in range(self.p):
            if rank != exclude and self.dead[rank] == _DEAD:
                return rank
        return None

    def close(self) -> None:
        # release numpy views before closing the mapping
        self.heartbeats = self.dead = self.dead_step = None  # type: ignore
        self.finished = None  # type: ignore
        self.arrivals = {}
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):
                pass


class PollingBarrier:
    """A reusable p-way barrier over a :class:`LivenessBlock` lane.

    Each rank keeps a private monotone round counter.  ``wait`` publishes
    the new round into the rank's arrival slot and polls until every
    *living* peer has published a round at least as new, a peer is declared
    dead (→ ``DeadPeer``), or ``timeout`` passes (→ ``Timeout``).  Unlike
    ``multiprocessing.Barrier``, a failed round leaves the barrier usable —
    elastic recovery depends on that.
    """

    POLL_SECONDS = 0.0005

    class DeadPeer(Exception):
        def __init__(self, rank: int, step: int) -> None:
            super().__init__(f"rank {rank} dead (step {step})")
            self.rank = rank
            self.step = step

    class Timeout(Exception):
        pass

    def __init__(self, block: LivenessBlock, lane: str, rank: int) -> None:
        self.block = block
        self.lane = lane
        self.rank = rank
        self.round = int(block.arrivals[lane][rank])

    def wait(self, timeout: float) -> None:
        self.round += 1
        arrivals = self.block.arrivals[self.lane]
        arrivals[self.rank] = self.round
        deadline = time.monotonic() + timeout
        while True:
            dead = self.block.first_dead(exclude=self.rank)
            if dead is not None:
                raise PollingBarrier.DeadPeer(dead, int(self.block.dead_step[dead]))
            if bool(np.all(arrivals >= self.round)):
                return
            if time.monotonic() > deadline:
                raise PollingBarrier.Timeout(
                    f"barrier lane {self.lane!r} round {self.round} timed out "
                    f"after {timeout:.0f}s"
                )
            time.sleep(self.POLL_SECONDS)


class HeartbeatThread:
    """Daemon thread a worker runs to stamp its liveness slot."""

    def __init__(self, block: LivenessBlock, rank: int,
                 interval: float = DEFAULT_HEARTBEAT_INTERVAL) -> None:
        self.block = block
        self.rank = rank
        self.interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{rank}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.is_set():
            self.block.stamp(self.rank)
            self._stop.wait(self.interval)

    def start(self) -> "HeartbeatThread":
        self.block.stamp(self.rank)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()


class WorkerMonitor:
    """Parent-side liveness detector.

    Polls worker process handles and heartbeat slots; when a rank's process
    has exited (before the run finished) or its heartbeat is older than
    ``heartbeat_timeout``, marks it dead in the liveness block so every
    blocked :class:`PollingBarrier` (and the parent's result-drain loop)
    unblocks within one poll interval.  Records the detection latency —
    wall seconds from the last heartbeat (≈ death) to detection — for the
    acceptance criterion "detect a killed worker in < 5 s".
    """

    POLL_SECONDS = 0.1

    def __init__(
        self,
        block: LivenessBlock,
        is_alive: Dict[int, Callable[[], bool]],
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        on_death: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.block = block
        self.is_alive = dict(is_alive)
        self.heartbeat_timeout = heartbeat_timeout
        self.on_death = on_death
        self.detections: Dict[int, float] = {}   # rank -> detection seconds
        self._done: set = set()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="worker-monitor", daemon=True
        )

    def mark_finished(self, rank: int) -> None:
        """Rank completed normally — stop watching it."""
        self._done.add(rank)

    def _run(self) -> None:
        while not self._stop.is_set():
            now = time.monotonic()
            for rank, probe in self.is_alive.items():
                if (
                    rank in self._done
                    or self.block.is_finished(rank)
                    or self.block.is_dead(rank)
                ):
                    continue
                exited = not probe()
                stale = (now - float(self.block.heartbeats[rank])) > self.heartbeat_timeout
                if exited or stale:
                    latency = max(0.0, now - float(self.block.heartbeats[rank]))
                    self.block.declare_dead(rank)
                    self.detections[rank] = latency
                    if self.on_death is not None:
                        self.on_death(rank, latency)
            self._stop.wait(self.POLL_SECONDS)

    def start(self) -> "WorkerMonitor":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
