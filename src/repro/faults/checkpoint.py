"""Checkpoint/restore for distributed training runs.

A :class:`Checkpoint` captures everything needed to resume a run
bit-exactly on the simulator (and best-effort on real execution): the
globally consistent parameter vector at an interval boundary, per-learner
RNG state (minibatch sampler + dropout), algorithm-specific state (e.g.
EAMSGD momentum), the metrics tape, and the virtual clock.

Stores come in two flavours: :class:`MemoryCheckpointStore` (in-process —
what elastic recovery uses between restarts) and
:class:`DirCheckpointStore` (``pickle`` files with atomic tmp-then-rename
writes — what ``repro run --checkpoint-dir/--resume`` uses).  Checkpoints
are keyed by a run identity string so one directory can hold several
experiments' checkpoints side by side; ``latest(key)`` returns the highest
completed interval.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DirCheckpointStore",
    "open_store",
]

FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    """One resumable snapshot, taken at a synchronisation boundary."""

    key: str                      # run identity (stable across restarts)
    interval: int                 # completed intervals / sync rounds
    steps_done: int               # local steps completed per learner
    x: np.ndarray                 # globally consistent parameter vector
    clock: float                  # backend-native seconds at snapshot time
    sampler_states: List[dict] = field(default_factory=list)   # per learner
    dropout_states: List[dict] = field(default_factory=list)   # per learner
    tape_state: Optional[dict] = None
    algo_state: Dict[str, object] = field(default_factory=dict)
    p: int = 0                    # learner count the snapshot was taken with
    version: int = FORMAT_VERSION

    def validate(self) -> None:
        if self.version != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format v{self.version} != supported v{FORMAT_VERSION}"
            )


class CheckpointStore:
    """Interface: ``save`` a checkpoint, fetch the ``latest`` for a key."""

    def save(self, ckpt: Checkpoint) -> None:
        raise NotImplementedError

    def latest(self, key: str) -> Optional[Checkpoint]:
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """Keeps only the most recent checkpoint per key, in process memory."""

    def __init__(self) -> None:
        self._by_key: Dict[str, Checkpoint] = {}

    def save(self, ckpt: Checkpoint) -> None:
        prev = self._by_key.get(ckpt.key)
        if prev is None or ckpt.interval >= prev.interval:
            self._by_key[ckpt.key] = ckpt

    def latest(self, key: str) -> Optional[Checkpoint]:
        return self._by_key.get(key)


def _safe_key(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", key)


class DirCheckpointStore(CheckpointStore):
    """Checkpoints as ``<key>.ckpt-<interval>.pkl`` files in one directory.

    Writes are atomic (tmp file in the same directory, then ``os.replace``)
    so a crash mid-write never corrupts the latest good checkpoint.  Older
    intervals for the same key are pruned after a successful write, keeping
    ``keep`` files per key.
    """

    def __init__(self, root: os.PathLike, keep: int = 2) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = max(1, keep)

    def _paths_for(self, key: str) -> List[Path]:
        prefix = f"{_safe_key(key)}.ckpt-"
        found = []
        for path in self.root.iterdir():
            name = path.name
            if name.startswith(prefix) and name.endswith(".pkl"):
                try:
                    interval = int(name[len(prefix):-4])
                except ValueError:
                    continue
                found.append((interval, path))
        return [p for _, p in sorted(found)]

    def save(self, ckpt: Checkpoint) -> None:
        target = self.root / f"{_safe_key(ckpt.key)}.ckpt-{ckpt.interval}.pkl"
        fd, tmp = tempfile.mkstemp(
            prefix=target.name + ".", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(ckpt, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        paths = self._paths_for(ckpt.key)
        for stale in paths[:-self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    def latest(self, key: str) -> Optional[Checkpoint]:
        paths = self._paths_for(key)
        if not paths:
            return None
        with open(paths[-1], "rb") as fh:
            ckpt: Checkpoint = pickle.load(fh)
        ckpt.validate()
        return ckpt


def open_store(spec) -> CheckpointStore:
    """``None`` → fresh in-memory store; a path → directory store;
    an existing store passes through."""
    if spec is None:
        return MemoryCheckpointStore()
    if isinstance(spec, CheckpointStore):
        return spec
    return DirCheckpointStore(spec)
