"""Declarative, seeded fault plans that both backends execute identically.

A :class:`FaultPlan` is a list of :class:`Fault` specs plus a seed.  The
trainers and backends *query* the plan at well-defined points (before each
local step, per parameter-server request, per shard apply) and never mutate
it, so the same plan object drives the virtual-time simulator (faults become
event-time hooks: extra :class:`~repro.sim.Delay`, a coroutine returning
early) and the multiprocessing backend (faults become a real ``os._exit`` or
``time.sleep`` inside the worker).

Fault kinds
-----------
``crash``      kill learner ``learner`` after ``step`` local steps.
``ps_crash``   kill parameter-server shard ``shard`` after ``push`` applies.
``straggle``   slow learner ``learner`` down by ``factor``× for local steps
               ``[start, stop)`` (``stop`` omitted = forever).
``drop``       lose the replies to learner ``learner``'s parameter-server
               requests — either request ordinals ``[nth, nth+count)``
               exactly, or each request independently with probability
               ``rate`` (decided by a counter-based hash of the plan seed,
               so both backends and repeated runs agree).
``delay``      delay the replies to the same selection by ``seconds``.
``disconnect`` sever learner ``learner``'s TCP connections after ``step``
               local steps (net backend: the process stays alive and the
               ``reconnect`` recovery policy can resume the session; other
               backends treat it as a no-op since there is no wire to cut).

The string grammar the CLI uses (``repro run EXP --fault ...``) is
``kind:key=value,key=value`` with multiple faults separated by ``;``::

    crash:learner=2,step=40
    straggle:learner=1,factor=4,start=10,stop=30
    crash:learner=2,step=40;drop:learner=0,rate=0.05
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Fault", "FaultPlan", "RetryPolicy", "parse_faults"]

FAULT_KINDS = ("crash", "ps_crash", "straggle", "drop", "delay", "disconnect")


@dataclass(frozen=True)
class Fault:
    """One injected fault.  Field meaning depends on ``kind`` (see module
    docstring); unused fields stay at their defaults."""

    kind: str
    learner: Optional[int] = None
    shard: Optional[int] = None
    step: Optional[int] = None       # crash: after this many local steps
    push: Optional[int] = None       # ps_crash: after this many applies
    factor: float = 1.0              # straggle: slowdown multiple
    start: int = 0                   # straggle: first afflicted step
    stop: Optional[int] = None       # straggle: one past the last step
    nth: Optional[int] = None        # drop/delay: first afflicted request
    count: int = 1                   # drop/delay: how many requests
    rate: Optional[float] = None     # drop/delay: per-request probability
    seconds: float = 0.0             # delay: added reply latency

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if self.kind == "crash" and (self.learner is None or self.step is None):
            raise ValueError("crash fault needs learner= and step=")
        if self.kind == "ps_crash" and (self.shard is None or self.push is None):
            raise ValueError("ps_crash fault needs shard= and push=")
        if self.kind == "straggle":
            if self.learner is None or self.factor <= 1.0:
                raise ValueError("straggle fault needs learner= and factor > 1")
        if self.kind in ("drop", "delay"):
            if self.learner is None:
                raise ValueError(f"{self.kind} fault needs learner=")
            if (self.nth is None) == (self.rate is None):
                raise ValueError(f"{self.kind} fault needs exactly one of nth=/rate=")
            if self.rate is not None and not (0.0 < self.rate <= 1.0):
                raise ValueError(f"rate must be in (0, 1], got {self.rate}")
        if self.kind == "delay" and self.seconds <= 0.0:
            raise ValueError("delay fault needs seconds > 0")
        if self.kind == "disconnect" and (
            self.learner is None or self.step is None
        ):
            raise ValueError("disconnect fault needs learner= and step=")


def _hash_uniform(seed: int, *words: int) -> float:
    """Deterministic uniform in [0, 1) from (seed, words) — the counter-based
    coin both backends flip for ``rate=`` faults."""
    state = np.random.SeedSequence([seed, *words]).generate_state(1)[0]
    return float(state) / float(2**32)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of faults plus the seed for probabilistic ones.

    Query methods are cheap and pure: backends call them from hot-ish paths
    (per step, per PS request) without side effects.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0
    retry: "RetryPolicy" = field(default_factory=lambda: RetryPolicy())

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def parse(cls, text: str, seed: int = 0,
              retry: Optional["RetryPolicy"] = None) -> "FaultPlan":
        return cls(
            faults=tuple(parse_faults(text)),
            seed=seed,
            retry=retry if retry is not None else RetryPolicy(),
        )

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- queries -------------------------------------------------------------

    def crash_step(self, learner: int) -> Optional[int]:
        """The local step after which ``learner`` dies, or None."""
        steps = [
            f.step for f in self.faults
            if f.kind == "crash" and f.learner == learner
        ]
        return min(steps) if steps else None

    def crash_learners(self) -> Dict[int, int]:
        """``{learner: step}`` for every crash fault (the parent's oracle for
        labelling a worker that died without a farewell message)."""
        out: Dict[int, int] = {}
        for f in self.faults:
            if f.kind == "crash":
                prev = out.get(f.learner)
                out[f.learner] = f.step if prev is None else min(prev, f.step)
        return out

    def disconnect_step(self, learner: int) -> Optional[int]:
        """The local step after which ``learner``'s connections are severed,
        or None."""
        steps = [
            f.step for f in self.faults
            if f.kind == "disconnect" and f.learner == learner
        ]
        return min(steps) if steps else None

    def disconnect_learners(self) -> Dict[int, int]:
        """``{learner: step}`` for every disconnect fault."""
        out: Dict[int, int] = {}
        for f in self.faults:
            if f.kind == "disconnect":
                prev = out.get(f.learner)
                out[f.learner] = f.step if prev is None else min(prev, f.step)
        return out

    def ps_crash_push(self, shard: int) -> Optional[int]:
        """The apply count after which PS shard ``shard`` dies, or None."""
        pushes = [
            f.push for f in self.faults
            if f.kind == "ps_crash" and f.shard == shard
        ]
        return min(pushes) if pushes else None

    def straggle_factor(self, learner: int, step: int) -> float:
        """Combined slowdown multiple for ``learner`` at local ``step``."""
        factor = 1.0
        for f in self.faults:
            if f.kind != "straggle" or f.learner != learner:
                continue
            if step >= f.start and (f.stop is None or step < f.stop):
                factor *= f.factor
        return factor

    def has_stragglers(self) -> bool:
        return any(f.kind == "straggle" for f in self.faults)

    def _selected(self, fault: Fault, ordinal: int) -> bool:
        if fault.nth is not None:
            return fault.nth <= ordinal < fault.nth + fault.count
        return _hash_uniform(self.seed, fault.learner, ordinal) < fault.rate

    def ps_reply_drops(self, learner: int, ordinal: int) -> int:
        """How many consecutive times the reply to ``learner``'s request
        number ``ordinal`` is lost (0 = delivered first try)."""
        drops = 0
        for f in self.faults:
            if f.kind == "drop" and f.learner == learner and self._selected(f, ordinal):
                drops += 1
        return drops

    def ps_reply_delay(self, learner: int, ordinal: int) -> float:
        """Added latency (seconds) on the reply to request ``ordinal``."""
        total = 0.0
        for f in self.faults:
            if f.kind == "delay" and f.learner == learner and self._selected(f, ordinal):
                total += f.seconds
        return total

    def touches_ps(self) -> bool:
        return any(f.kind in ("ps_crash", "drop", "delay") for f in self.faults)

    # -- restart bookkeeping --------------------------------------------------

    def survivor_plan(self, dead_learner: Optional[int]) -> "FaultPlan":
        """The plan a restarted (elastic) run executes: the fired crash fault
        is consumed, and learner-scoped faults for the dead rank go with it.
        Surviving ranks are renumbered on restart, so remaining
        learner-scoped faults are dropped too — a fault plan describes one
        incarnation of the run, not its reincarnations."""
        kept = tuple(
            f for f in self.faults
            if f.kind == "ps_crash"  # shards persist across learner restarts
        ) if dead_learner is not None else self.faults
        return replace(self, faults=kept)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for parameter-server request/reply.

    A request is retried up to ``max_retries`` times, sleeping
    ``base_seconds * multiplier**attempt`` before attempt ``attempt + 1``;
    when the budget is exhausted the client raises
    :class:`~repro.runtime.RetryBudgetExhausted`.  The sim backend charges
    the same schedule as virtual time, so retry cost shows up identically in
    both substrates.

    ``jitter`` spreads real (wall-clock) retries to desynchronize retry
    storms: :meth:`jittered_backoff` scales each sleep by a factor uniform in
    ``[1 - jitter, 1 + jitter]``, with the uniform draw supplied by the
    caller so both repeats of a seeded run sleep identically.  The sim
    backend keeps charging the deterministic :meth:`backoff` schedule.
    ``deadline_seconds`` caps the *total* time a client may spend retrying
    one request (None = bounded only by the transport timeout).
    """

    max_retries: int = 3
    base_seconds: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.0
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_seconds < 0:
            raise ValueError(f"base_seconds must be >= 0, got {self.base_seconds}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt + 1`` (attempt is 0-based)."""
        return self.base_seconds * self.multiplier**attempt

    def jittered_backoff(self, attempt: int, u: float) -> float:
        """:meth:`backoff` scaled by ``[1 - jitter, 1 + jitter]`` at uniform
        draw ``u`` in [0, 1) — pass :func:`_hash_uniform` of (seed, rank,
        seq, attempt) for a deterministic, rank-decorrelated schedule."""
        return self.backoff(attempt) * (1.0 - self.jitter + 2.0 * self.jitter * u)

    def total_backoff(self, attempts: int) -> float:
        return sum(self.backoff(i) for i in range(attempts))


_FIELD_TYPES = {
    "learner": int, "shard": int, "step": int, "push": int,
    "factor": float, "start": int, "stop": int,
    "nth": int, "count": int, "rate": float, "seconds": float,
}


def parse_faults(text: str) -> List[Fault]:
    """Parse the CLI grammar: ``kind:k=v,k=v[;kind:k=v...]``."""
    out: List[Fault] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, sep, rest = clause.partition(":")
        kind = kind.strip()
        if not sep or kind not in FAULT_KINDS:
            raise ValueError(
                f"bad fault clause {clause!r}: expected kind:key=value,... "
                f"with kind in {', '.join(FAULT_KINDS)}"
            )
        kwargs: Dict[str, object] = {}
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or key not in _FIELD_TYPES:
                raise ValueError(
                    f"bad fault field {item!r} in {clause!r} "
                    f"(known: {', '.join(sorted(_FIELD_TYPES))})"
                )
            kwargs[key] = _FIELD_TYPES[key](value.strip())
        out.append(Fault(kind=kind, **kwargs))
    if not out:
        raise ValueError(f"no faults in {text!r}")
    return out
