"""repro.faults: deterministic fault injection, supervision, and recovery.

The package has four pieces, layered so nothing here imports the trainers
or a concrete backend (the runtime imports *us*):

* :mod:`~repro.faults.plan` — declarative, seeded :class:`FaultPlan`
  (learner crashes, PS-shard crashes, stragglers, dropped/delayed PS
  replies) that both backends execute identically, plus the
  :class:`RetryPolicy` for PS request/reply backoff.
* :mod:`~repro.faults.supervisor` — shared-memory liveness block, polling
  barrier, heartbeat thread and parent-side monitor that give the
  multiprocessing backend fast failure detection.
* :mod:`~repro.faults.checkpoint` — :class:`Checkpoint` snapshots and the
  memory/directory stores behind ``repro run --resume`` and elastic
  restart.
* :mod:`~repro.faults.context` / :mod:`~repro.faults.recovery` — the
  per-run :class:`FaultContext` (plan + recovery policy + store) and the
  ``elastic`` restart loop.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointStore,
    DirCheckpointStore,
    MemoryCheckpointStore,
    open_store,
)
from .context import (
    RECOVERY_POLICIES,
    FaultContext,
    resolve_fault_context,
    use_faults,
)
from .plan import Fault, FaultPlan, RetryPolicy, parse_faults
from .recovery import elastic_train

__all__ = [
    "Fault",
    "FaultPlan",
    "RetryPolicy",
    "parse_faults",
    "FaultContext",
    "use_faults",
    "resolve_fault_context",
    "RECOVERY_POLICIES",
    "Checkpoint",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DirCheckpointStore",
    "open_store",
    "elastic_train",
]
