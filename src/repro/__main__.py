"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Print the experiment registry (one id per paper table/figure).
run EXP_ID [--set key=value ...] [--save out.json]
    Regenerate one experiment and print its report.  ``--set`` forwards
    keyword arguments (ints/floats/tuples parsed from the value).
claims
    Print every experiment's paper claim — the checklist EXPERIMENTS.md
    verifies.
"""

from __future__ import annotations

import argparse
import ast
import sys

from .harness import format_result, list_experiments, run_experiment
from .harness.experiments import EXPERIMENTS


def _parse_value(text: str):
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")
    sub.add_parser("claims", help="print every experiment's paper claim")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("exp_id")
    run_p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="key=value",
        help="experiment kwargs, e.g. --set p_values=(1,8) --set epochs=12",
    )
    run_p.add_argument("--save", default=None, help="write the result as JSON")

    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0

    if args.command == "claims":
        for exp_id in list_experiments():
            result = None
            fn = EXPERIMENTS[exp_id]
            # claims are attached by the registry decorator at run time; for a
            # cheap listing, run only the zero-cost experiments and read the
            # docstring-free metadata off a stub run for the rest
            print(f"{exp_id}:")
            doc = (fn.__doc__ or "").strip().splitlines()
            if doc:
                print(f"  {doc[0]}")
        return 0

    kwargs = {}
    for item in args.overrides:
        if "=" not in item:
            parser.error(f"--set expects key=value, got {item!r}")
        key, _, value = item.partition("=")
        kwargs[key.strip()] = _parse_value(value.strip())
    result = run_experiment(args.exp_id, **kwargs)
    print(format_result(result))
    if args.save:
        from .harness.serialization import save_result

        save_result(result, args.save)
        print(f"saved to {args.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
