"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list [REGISTRY]
    Print the scenario registries — experiment families, trainers, problems,
    machine families, recovery policies, backends — or just one of them.
run [EXP_ID | --spec FILE] [--set key=value ...] [--backend {sim,mp}]
        [--save out.json] [--jobs N] [--cache-dir D] [--trace t.json]
        [--metrics m.json] [--manifest mf.json] [--profile] [--fault SPEC]
        [--recovery POLICY] [--checkpoint-dir D] [--resume] [--timeout S]
        [--events PATH|console]
    Regenerate one experiment and print its report.  ``--spec`` runs a
    declarative scenario document (YAML/JSON, see ``examples/specs/``)
    instead of naming an experiment; either way the run compiles through
    :func:`repro.spec.compile_scenario` and the other flags override the
    scenario's fields.  ``--set`` forwards
    keyword arguments (ints/floats/tuples parsed from the value).
    ``--backend mp`` runs the trainers as real parallel worker processes
    (shared-memory collectives / PS shard processes) instead of the default
    virtual-time simulation — wall-clock parallelism on host cores.
    ``--fault`` injects deterministic faults (grammar
    ``kind:key=value,...``, e.g. ``--fault 'crash:learner=2,step=40'``;
    repeatable), ``--recovery`` picks what happens when something dies
    (``fail_fast``/``elastic``/``restart_shard``), ``--checkpoint-dir``
    keeps periodic checkpoints on disk and ``--resume`` restarts from the
    latest one.  ``--timeout`` sets the mp backend's starvation timeout in
    seconds.  ``--jobs N`` fans independent grid points (e.g. each ``p``) out over N
    worker processes — results are bit-identical to ``--jobs 1``; with
    ``--cache-dir`` completed points are memoised on disk so interrupted
    sweeps resume for free.  ``--trace`` writes a Chrome trace-event file
    (chrome://tracing / Perfetto) with one track per learner/server;
    ``--metrics`` writes the observability registry (counters/gauges/
    histograms) as JSON; ``--profile`` prints a flame-style phase table.  A
    run manifest (config, seed, git rev, wall+virtual duration) is written
    next to every ``--save`` result, or wherever ``--manifest`` points.
bench [--quick] [--out FILE] [--check BASELINE] [--threshold X] [--filter SUB]
    Time the substrate hot paths (conv2d forward/backward vs the legacy
    kernels, temporal conv, im2col/col2im, optimiser steps, one SASGD
    interval, sim-engine event throughput and fabric message rate vs their
    legacy counterparts, one small end-to-end experiment) and write a
    ``BENCH_<git-rev>.json`` baseline.  ``--check`` compares against a saved
    baseline and exits non-zero when any bench is more than ``--threshold``
    (default 2.0) times slower or a derived speedup drops below its floor
    (the batched engine must hold ≥ 5× the legacy engine).  ``--filter``
    restricts the run to benchmarks whose name contains a substring.
claims
    Print every experiment's paper claim — the checklist EXPERIMENTS.md
    verifies.
    ``--events`` streams structured run telemetry: ``console`` prints live
    progress lines, any other value records a JSONL event log (seq-numbered
    snapshot/delta protocol) that ``repro watch`` tails and ``repro
    inspect`` summarises.
inspect FILE
    Summarise a file written by ``run``: experiment result, metrics export,
    Chrome trace, run manifest, or JSONL event log (auto-detected).
watch [EVENTS.jsonl | --connect HOST:PORT] [--interval S] [--once]
    Tail a ``--events`` recorder file, folding the stream into a live
    ``RunSnapshot`` view; exits when the run finishes (or after one render
    with ``--once``).  ``--connect`` attaches to a live TCP event stream
    (a run started with ``--events tcp://host:port``) instead of a file:
    the publisher replays a snapshot of the run so far, then live deltas.
launch SPEC [--role JOB:TASK] [--print-commands] [--timeout S]
    Bring a custom scenario up as a real multi-process TCP cluster (the
    ``net`` backend).  Without ``--role``, spawns every worker and PS
    shard as a local subprocess on loopback ephemeral ports and runs the
    coordinator inline; ``--print-commands`` instead prints one
    copy-pasteable command per role for separate terminals or hosts.
    ``--role worker:0`` / ``ps:0`` / ``coordinator`` takes a single seat
    in a cluster described by ``REPRO_CLUSTER_SPEC`` (what the printed
    commands set).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from pathlib import Path

from .harness import format_result, list_experiments
from .harness.experiments import EXPERIMENTS


def _parse_value(text: str):
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _spec_from_args(args, parser):
    """The run's :class:`~repro.spec.ScenarioSpec`.

    ``--spec FILE`` loads a scenario document; every other flag is an
    override layered on top of it.  Without ``--spec`` the legacy flag
    surface (EXP_ID, --set, --backend, --fault, …) compiles to an
    equivalent spec, so both roads converge on the one
    :func:`~repro.spec.compile_scenario` path.
    """
    from .spec import ScenarioSpec, load_spec

    overrides = {}
    for item in args.overrides:
        if "=" not in item:
            parser.error(f"--set expects key=value, got {item!r}")
        key, _, value = item.partition("=")
        overrides[key.strip()] = _parse_value(value.strip())

    backend_args = {}
    if args.timeout is not None:
        backend_args["timeout"] = args.timeout

    if args.spec is not None:
        if args.exp_id is not None:
            parser.error(
                "pass either an experiment id or --spec FILE, not both "
                "(the spec names what to run)"
            )
        spec = load_spec(args.spec)
        changes = {}
        if overrides:
            # --set patches the spec's parameter surface for its mode
            if spec.mode == "experiment":
                changes["params"] = {**spec.params, **overrides}
            else:
                changes["config"] = {**spec.config, **overrides}
        if args.backend is not None:
            changes["backend"] = args.backend
        if backend_args:
            changes["backend_args"] = {**spec.backend_args, **backend_args}
        if args.fault:
            changes["faults"] = list(args.fault)
        if args.fault_seed:
            changes["fault_seed"] = args.fault_seed
        if args.recovery is not None:
            changes["recovery"] = args.recovery
        if args.checkpoint_dir is not None:
            changes["checkpoint_dir"] = args.checkpoint_dir
        if args.resume:
            changes["resume"] = True
        if args.events:
            changes["events"] = tuple(spec.events) + tuple(args.events)
        return spec.with_overrides(**changes) if changes else spec

    if args.exp_id is None:
        parser.error("pass an experiment id (see `repro list`) or --spec FILE")
    return ScenarioSpec(
        experiment=args.exp_id,
        params=overrides,
        backend=args.backend,
        backend_args=backend_args,
        faults=list(args.fault) or None,
        fault_seed=args.fault_seed,
        recovery=args.recovery,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        events=tuple(args.events),
    ).validate()


def _cmd_run(args, parser) -> int:
    import contextlib

    from . import obs
    from .spec import SpecError, UnknownNameError, compile_scenario

    try:
        spec = _spec_from_args(args, parser)
        plan = compile_scenario(spec)
    except (SpecError, UnknownNameError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    jobs = args.jobs
    if jobs != 1 and (args.trace or args.metrics or args.profile):
        print(
            "note: --trace/--metrics/--profile observe only the parent process; "
            "falling back to --jobs 1 so the whole run is instrumented",
            file=sys.stderr,
        )
        jobs = 1
    if jobs != 1 and plan.fault_ctx is not None:
        print(
            "note: fault injection/recovery state lives in the run process; "
            "falling back to --jobs 1",
            file=sys.stderr,
        )
        jobs = 1

    want_obs = bool(args.trace or args.metrics or args.manifest or args.save or args.profile)
    session = obs.ObsSession(trace=bool(args.trace or args.profile))
    event_files = [
        ev
        for ev in spec.events
        if ev not in ("console", "-") and not ev.startswith("tcp://")
    ]
    t0 = time.perf_counter()
    with contextlib.ExitStack() as stack:
        if want_obs:
            stack.enter_context(obs.observe(session))
        # the plan installs the spec's event sinks and fault context itself
        result = plan.execute(jobs=jobs, cache_dir=args.cache_dir)
    wall = time.perf_counter() - t0

    print(format_result(result))
    for ev in event_files:
        print(f"events recorded to {ev} (replay with `repro watch {ev}`)")
    if args.save:
        from .harness.serialization import save_result

        save_result(result, args.save)
        print(f"saved to {args.save}")
    if args.metrics:
        session.registry.save(args.metrics)
        print(f"metrics saved to {args.metrics}")
    if args.trace:
        session.build_exporter().save(args.trace)
        print(f"trace saved to {args.trace} (load in chrome://tracing or Perfetto)")
    manifest_path = args.manifest
    if manifest_path is None and args.save:
        manifest_path = obs.manifest_path_for(args.save)
    if manifest_path is not None:
        manifest = obs.RunManifest.collect(
            exp_id=plan.exp_id,
            config=spec.canonical(),
            wall_seconds=wall,
            virtual_seconds=session.virtual_seconds,
        )
        manifest.write(manifest_path)
        print(f"manifest saved to {manifest_path}")
    if args.profile:
        prof = obs.Profiler()
        for run in session.trace_runs:
            prof.ingest_spans(run.spans)
        print()
        print(prof.format_flame())
    return 0


def _cmd_list(args) -> int:
    """Print the scenario registries (everything a spec can name)."""
    from .spec import REGISTRIES, ensure_populated

    ensure_populated()
    wanted = args.registry
    if wanted is not None and wanted not in REGISTRIES:
        import difflib

        close = difflib.get_close_matches(wanted, sorted(REGISTRIES), n=1, cutoff=0.4)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        print(
            f"error: unknown registry {wanted!r}{hint} "
            f"(registries: {', '.join(sorted(REGISTRIES))})",
            file=sys.stderr,
        )
        return 2
    for reg_name, registry in REGISTRIES.items():
        if wanted is not None and reg_name != wanted:
            continue
        print(f"{reg_name}:")
        for name in registry.names():
            meta = registry.meta(name)
            blurb = meta.get("title") or meta.get("description") or ""
            print(f"  {name:<22}{blurb}".rstrip())
            capabilities = meta.get("capabilities")
            if capabilities:
                print(f"  {'':<22}  {capabilities}")
        print()
    return 0


def _cmd_bench(args) -> int:
    from .harness.bench import (
        compare_to_baseline,
        default_bench_path,
        format_bench,
        load_bench,
        run_benchmarks,
        save_bench,
    )

    doc = run_benchmarks(
        quick=args.quick,
        include_experiment=not args.no_experiment,
        mp_timeout=args.timeout,
        name_filter=args.filter,
    )
    print(format_bench(doc))
    out = Path(args.out) if args.out else default_bench_path(doc)
    save_bench(doc, out)
    print(f"\nbaseline written to {out}")

    if args.check:
        try:
            baseline = load_bench(args.check)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load baseline {args.check}: {exc}", file=sys.stderr)
            return 1
        ok, messages = compare_to_baseline(doc, baseline, args.threshold)
        print(f"\nregression check vs {args.check} (threshold {args.threshold}x):")
        for line in messages:
            print(f"  {line}")
        if not ok:
            return 1
    return 0


def _inspect_events(path: str, lines) -> int:
    """Summarise a JSONL event log (counts, timeline, final snapshot)."""
    from . import obs

    try:
        events = [obs.Event.parse_line(line) for line in lines]
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"{path}: broken event log: {exc}", file=sys.stderr)
        return 1
    if not events:
        print(f"{path}: empty event log", file=sys.stderr)
        return 1

    counts: dict = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    seqs = [e.seq for e in events]
    gaps = [
        (prev, cur)
        for prev, cur in zip(seqs, seqs[1:])
        if cur != prev + 1
    ]
    print(f"{path}: event log, {len(events)} event(s) (format v{events[0].v})")
    print(f"  time:  {events[0].t:.3f}s .. {events[-1].t:.3f}s")
    seq_note = "contiguous" if not gaps else f"{len(gaps)} gap(s)!"
    print(f"  seq:   {seqs[0]} .. {seqs[-1]} ({seq_note})")
    print("  kinds:")
    for kind, n in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"    {kind:<20} {n}")
    timeline = [
        e for e in events
        if e.kind in ("fault_injected", "failure_detected", "recovery_action")
    ]
    if timeline:
        print("  fault/recovery timeline:")
        for e in timeline:
            detail = " ".join(f"{k}={v}" for k, v in sorted(e.data.items()))
            print(f"    [{e.t:9.3f}s #{e.seq}] {e.kind} {e.source} {detail}")
    snap = obs.RunSnapshot.from_events(events, strict=False)
    print("  final snapshot:")
    for line in obs.format_snapshot(snap).splitlines():
        print(f"  {line}")
    return 0


def _cmd_inspect(path: str) -> int:
    from . import obs

    try:
        text = Path(path).read_text()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 1
    lines = [line for line in text.splitlines() if line.strip()]
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        # not one JSON document — a JSONL event log, or junk
        if lines and lines[0].lstrip().startswith("{"):
            return _inspect_events(path, lines)
        print(f"cannot read {path}: not a repro JSON document", file=sys.stderr)
        return 1
    if isinstance(data, dict) and {"kind", "seq", "data"} <= set(data):
        # a single-event log is still an event log
        return _inspect_events(path, lines)
    if not isinstance(data, dict):
        print(f"{path}: not a repro JSON document", file=sys.stderr)
        return 1

    if "traceEvents" in data:
        runs = obs.TraceExporter.parse(data)
        print(f"{path}: chrome trace, {len(runs)} run(s)")
        for label, run in runs.items():
            print(f"\n== {label} (virtual {run.duration:.3f}s) ==")
            actors = []
            for span in run.spans:
                if span.actor not in actors:
                    actors.append(span.actor)
            for actor in actors:
                cats = obs.busy_seconds(run.spans, actor)
                busy = sum(cats.values())
                idle = max(0.0, run.duration - busy)
                detail = ", ".join(
                    f"{cat}={sec:.3f}s" for cat, sec in sorted(cats.items())
                )
                print(f"  {actor:<12} busy={busy:.3f}s idle={idle:.3f}s  ({detail})")
            if run.messages:
                nbytes = sum(m.nbytes for m in run.messages)
                print(f"  messages: {len(run.messages)} ({nbytes / 2**20:.2f} MiB)")
        return 0

    if {"counters", "gauges", "histograms"} <= set(data):
        print(f"{path}: metrics export")
        if data["counters"]:
            print("counters:")
            for key, value in sorted(data["counters"].items()):
                print(f"  {key} = {value:g}")
        if data["gauges"]:
            print("gauges:")
            for key, value in sorted(data["gauges"].items()):
                shown = "none" if value is None else f"{value:g}"
                print(f"  {key} = {shown}")
        if data["histograms"]:
            print("histograms:")
            for key, summary in sorted(data["histograms"].items()):
                if not summary.get("count"):
                    print(f"  {key}: (empty)")
                    continue
                print(
                    f"  {key}: n={summary['count']} mean={summary['mean']:.4g} "
                    f"p50={summary['p50']:.4g} p99={summary['p99']:.4g} "
                    f"max={summary['max']:.4g}"
                )
        return 0

    if "exp_id" in data and "created" in data:
        manifest = obs.RunManifest.from_dict(data)
        print(f"{path}: run manifest")
        print(f"  experiment: {manifest.exp_id}")
        print(f"  created:    {manifest.created}")
        print(f"  git rev:    {manifest.git_rev or '(unknown)'}")
        print(f"  python:     {manifest.python}  ({manifest.platform})")
        print(f"  wall:       {manifest.wall_seconds:.3f}s")
        print(f"  virtual:    {manifest.virtual_seconds:.3f}s")
        if manifest.config:
            print(f"  config:     {manifest.config}")
        if manifest.seed is not None:
            print(f"  seed:       {manifest.seed}")
        return 0

    if "exp_id" in data and ("rows" in data or "series" in data):
        from .harness.serialization import result_from_dict

        print(f"{path}: experiment result")
        print(format_result(result_from_dict(data)))
        return 0

    print(f"{path}: unrecognised document (keys: {sorted(data)[:8]})", file=sys.stderr)
    return 1


def _cmd_watch_remote(args) -> int:
    """Attach to a live TCP event stream and render snapshot views."""
    from . import obs
    from .net.events import iter_remote_events
    from .net.frames import ConnectionLost

    snap = obs.RunSnapshot()
    saw_any = False
    last_render = 0.0
    try:
        for event in iter_remote_events(args.connect):
            snap.apply(event)
            saw_any = True
            now = time.monotonic()
            # coalesce render bursts to one view per --interval
            if now - last_render >= args.interval or snap.finished:
                print(obs.format_snapshot(snap))
                print()
                last_render = now
            if args.once or snap.finished:
                break
    except ConnectionLost as exc:
        print(f"cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass
    if not saw_any:
        print(f"{args.connect}: stream closed before any event", file=sys.stderr)
        return 1
    if not (args.once or snap.finished):
        # publisher went away mid-run: show what we had
        print(obs.format_snapshot(snap))
    return 0


def _cmd_watch(args) -> int:
    """Tail a JSONL event recorder file and render live snapshot views."""
    from . import obs

    if args.connect:
        if args.path is not None:
            print(
                "error: pass a file or --connect HOST:PORT, not both",
                file=sys.stderr,
            )
            return 2
        return _cmd_watch_remote(args)
    if args.path is None:
        print(
            "error: pass an events file (or --connect HOST:PORT for a live "
            "stream)",
            file=sys.stderr,
        )
        return 2

    path = Path(args.path)
    snap = obs.RunSnapshot()
    pos = 0
    partial = ""
    saw_any = False
    try:
        while True:
            if path.exists():
                with open(path) as fh:
                    fh.seek(pos)
                    chunk = fh.read()
                    pos = fh.tell()
                # the recorder flushes whole lines, but a reader racing the
                # writer can still see a torn tail — keep it for next round
                partial += chunk
                lines = partial.split("\n")
                partial = lines.pop()
                fresh = False
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        snap.apply(obs.Event.parse_line(line))
                    except (ValueError, json.JSONDecodeError) as exc:
                        print(f"skipping broken event line: {exc}", file=sys.stderr)
                        continue
                    saw_any = True
                    fresh = True
                if fresh:
                    print(obs.format_snapshot(snap))
                    print()
            if args.once or snap.finished:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if not saw_any:
        print(f"{args.path}: no events", file=sys.stderr)
        return 1
    return 0


def _cmd_launch(args) -> int:
    """Run a scenario as a real multi-process TCP cluster (net backend)."""
    from .net.launch import launch
    from .runtime import BackendCapabilityError
    from .spec import SpecError, UnknownNameError

    try:
        return launch(
            args.spec,
            role=args.role,
            print_commands=args.print_commands,
            timeout=args.timeout,
        )
    except (SpecError, UnknownNameError, BackendCapabilityError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_chaos(args) -> int:
    """Soak a scenario under seeded fault schedules; exit 1 on violation."""
    from .chaos.harness import report_json, soak
    from .runtime import BackendCapabilityError
    from .spec import SpecError, UnknownNameError, load_spec

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    try:
        spec = load_spec(args.spec)
        if spec.mode == "experiment":
            raise ValueError(
                "repro chaos soaks custom scenarios "
                "(problem/algorithm/config); "
                f"{args.spec} names an experiment family"
            )
        report = soak(
            spec,
            args.spec,
            backends,
            rounds=args.rounds,
            seed=args.seed,
            timeout=args.timeout,
            max_step=args.max_step,
            log=print,
        )
    except (SpecError, UnknownNameError, BackendCapabilityError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report_json(report) + "\n")
        print(f"report written to {args.out}")
    bad = sum(1 for r in report.rounds if not r.passed)
    print(
        f"chaos: {len(report.rounds)} rounds on {', '.join(backends)} — "
        + ("all invariants held" if report.passed else f"{bad} VIOLATION(S)")
    )
    return 0 if report.passed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list",
        help="list the registries (experiments, trainers, problems, "
        "machines, recovery policies, backends)",
    )
    list_p.add_argument(
        "registry",
        nargs="?",
        default=None,
        help="print just this registry (default: all)",
    )
    sub.add_parser("claims", help="print every experiment's paper claim")

    run_p = sub.add_parser("run", help="run one experiment or scenario spec")
    run_p.add_argument(
        "exp_id",
        nargs="?",
        default=None,
        help="experiment id (see `repro list`); omit when using --spec",
    )
    run_p.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="run a declarative scenario document (.yml/.yaml/.json); other "
        "flags override the document's fields",
    )
    run_p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="key=value",
        help="experiment kwargs, e.g. --set p_values=(1,8) --set epochs=12",
    )
    run_p.add_argument(
        "--backend",
        default=None,
        help="execution backend: 'sim' (virtual time, the default), 'mp' "
        "(real multiprocessing on host cores), or 'net' (separate "
        "processes over TCP sockets; see also `repro launch`)",
    )
    run_p.add_argument("--save", default=None, help="write the result as JSON")
    run_p.add_argument(
        "--trace", default=None, help="write a Chrome trace-event JSON timeline"
    )
    run_p.add_argument(
        "--metrics", default=None, help="write the metrics registry as JSON"
    )
    run_p.add_argument(
        "--manifest",
        default=None,
        help="write the run manifest here (default: next to --save)",
    )
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="print a flame-style table of per-phase virtual time",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent grid points (0 = all cores)",
    )
    run_p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="memoise completed grid points here (resume interrupted sweeps)",
    )
    run_p.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="inject a deterministic fault, e.g. 'crash:learner=2,step=40' "
        "(kinds: crash, ps_crash, straggle, drop, delay; repeatable)",
    )
    run_p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the stochastic fault draws (drop/delay sampling)",
    )
    run_p.add_argument(
        "--recovery",
        default=None,
        help="what to do when something dies: fail_fast (default, raise a "
        "typed LearnerFailure), elastic (survivors restart from the last "
        "checkpoint as p-1), restart_shard (respawn dead PS shards from "
        "their snapshots)",
    )
    run_p.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="keep periodic checkpoints here (enables --resume across runs)",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    run_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="mp/net-backend starvation timeout in seconds",
    )
    run_p.add_argument(
        "--events",
        action="append",
        default=[],
        metavar="PATH|console|tcp://H:P",
        help="stream structured run events: 'console' (or '-') prints live "
        "progress lines, 'tcp://host:port' publishes to live subscribers "
        "(`repro watch --connect host:port`), any other value records a "
        "JSONL event log readable by `repro watch` and `repro inspect` "
        "(repeatable)",
    )

    bench_p = sub.add_parser(
        "bench", help="run substrate microbenchmarks, write a BENCH_<rev>.json"
    )
    bench_p.add_argument(
        "--quick", action="store_true", help="fewer reps (CI smoke mode)"
    )
    bench_p.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_<git-rev>.json in the cwd)",
    )
    bench_p.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against this baseline; exit 1 on regression",
    )
    bench_p.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="regression factor for --check (default: 2.0)",
    )
    bench_p.add_argument(
        "--no-experiment",
        action="store_true",
        help="skip the end-to-end experiment bench (kernels only)",
    )
    bench_p.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTRING",
        help="run only benchmarks whose name contains SUBSTRING "
        "(e.g. 'engine' or 'fabric')",
    )
    bench_p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="mp-backend starvation timeout for the mp interval bench "
        "(default: 60)",
    )

    ins_p = sub.add_parser(
        "inspect",
        help="summarise a result/metrics/trace/manifest/event-log file",
    )
    ins_p.add_argument("path")

    watch_p = sub.add_parser(
        "watch",
        help="tail a JSONL event log (or attach to a live TCP stream) and "
        "render a live snapshot view",
    )
    watch_p.add_argument(
        "path",
        nargs="?",
        default=None,
        help="events file written by `run --events` (omit with --connect)",
    )
    watch_p.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="attach to a live TCP event stream (a run started with "
        "--events tcp://HOST:PORT); replays a snapshot, then live deltas",
    )
    watch_p.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="S",
        help="poll interval in seconds (default: 0.5)",
    )
    watch_p.add_argument(
        "--once",
        action="store_true",
        help="render the current snapshot once and exit (no tailing)",
    )

    launch_p = sub.add_parser(
        "launch",
        help="run a custom scenario as a multi-process TCP cluster "
        "(net backend): spawn all roles locally, print per-role commands, "
        "or take one role",
    )
    launch_p.add_argument("spec", help="custom scenario document (.yml/.json)")
    launch_p.add_argument(
        "--role",
        default=None,
        metavar="JOB:TASK",
        help="take one seat (coordinator, worker:K, ps:K) in the cluster "
        "described by REPRO_CLUSTER_SPEC instead of spawning everything",
    )
    launch_p.add_argument(
        "--print-commands",
        action="store_true",
        help="print one copy-pasteable command per role (for separate "
        "terminals or remote hosts) instead of spawning subprocesses",
    )
    launch_p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="net-backend starvation/rendezvous timeout in seconds "
        "(default: 120)",
    )

    chaos_p = sub.add_parser(
        "chaos",
        help="soak a custom scenario under seeded randomized fault "
        "schedules, checking recovery invariants after every round",
    )
    chaos_p.add_argument("spec", help="custom scenario document (.yml/.json)")
    chaos_p.add_argument(
        "--rounds",
        type=int,
        default=10,
        metavar="N",
        help="fault schedules per backend (default: 10)",
    )
    chaos_p.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="chaos seed; the same (seed, round, backend) always draws the "
        "same schedule (default: 0)",
    )
    chaos_p.add_argument(
        "--backends",
        default="sim",
        metavar="B1,B2",
        help="comma-separated backends to soak (default: sim)",
    )
    chaos_p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="per-round mp/net starvation timeout in seconds (default: 60)",
    )
    chaos_p.add_argument(
        "--max-step",
        type=int,
        default=8,
        metavar="K",
        help="latest local step a drawn fault may target (default: 8)",
    )
    chaos_p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the full JSON report here",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list(args)

    if args.command == "claims":
        for exp_id in list_experiments():
            fn = EXPERIMENTS[exp_id]
            # claims are attached by the registry decorator at run time; for a
            # cheap listing, run only the zero-cost experiments and read the
            # docstring-free metadata off a stub run for the rest
            print(f"{exp_id}:")
            doc = (fn.__doc__ or "").strip().splitlines()
            if doc:
                print(f"  {doc[0]}")
        return 0

    if args.command == "inspect":
        return _cmd_inspect(args.path)

    if args.command == "watch":
        return _cmd_watch(args)

    if args.command == "launch":
        return _cmd_launch(args)

    if args.command == "chaos":
        return _cmd_chaos(args)

    if args.command == "bench":
        return _cmd_bench(args)

    return _cmd_run(args, parser)


if __name__ == "__main__":
    sys.exit(main())
