"""ASCII rendering of experiment results (the "same rows the paper reports")."""

from __future__ import annotations

from typing import List, Sequence

from .experiments import ExperimentResult

__all__ = ["format_table", "format_result", "format_series"]


def format_table(rows: Sequence[dict]) -> str:
    """Align a list of dicts into a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(line, widths)) for line in cells)
    return "\n".join([header, sep, body])


def format_series(result: ExperimentResult, max_points: int = 12) -> str:
    """Compact curve listing: name then (x:y) pairs, subsampled if long."""
    lines = []
    for name, pts in result.series.items():
        if not pts:
            lines.append(f"  {name}: (empty)")
            continue
        if len(pts) > max_points:
            stride = max(1, len(pts) // max_points)
            shown = pts[::stride]
            if shown[-1] != pts[-1]:
                shown.append(pts[-1])
        else:
            shown = pts
        body = " ".join(f"{x:g}:{y:.3f}" for x, y in shown)
        lines.append(f"  {name}: {body}")
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Full report block for one experiment."""
    parts = [
        f"== {result.exp_id}: {result.title} ==",
        f"paper claim: {result.paper_claim}",
    ]
    if result.rows:
        parts.append(format_table(result.rows))
    if result.series:
        parts.append("series (epoch:accuracy):")
        parts.append(format_series(result))
    if result.notes:
        parts.append(f"notes: {result.notes}")
    return "\n".join(parts) + "\n"
