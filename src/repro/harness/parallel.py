"""Parallel experiment grid runner with a content-addressed disk cache.

The figure reproductions sweep grids of ``(algorithm, p, T, γp)`` whose
points are completely independent — the classic embarrassingly parallel
shape.  This module fans those points out across a ``ProcessPoolExecutor``,
streams results back **in deterministic submission order**, and memoises
every completed point on disk under a hash of its exact configuration, so
re-runs (and ``examples/run_all_experiments.py``) resume for free.

Determinism
-----------
A grid point is ``(exp_id, kwargs)`` and every experiment derives all of its
randomness from the ``seed`` kwarg, so a point's result is a pure function
of its configuration: running it in a worker process is bit-identical to
running it inline, and ``jobs=4`` produces exactly the rows of ``jobs=1``.

Splitting
---------
``SPLIT_AXES`` names, per experiment, the sweep axes whose loop is the
*outermost* iteration of that experiment's body (in nesting order).  For
those experiments a full-grid call decomposes into single-point calls whose
concatenated rows/series are identical to the one-shot run — each point
rebuilds its problem from the same ``seed``, which is exactly what the
serial loop body does.  Experiments not listed (e.g. ``fig4`` with its
shared sequential-baseline row) run as a single point.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
import multiprocessing
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..obs import events as _events
from ..spec import registry as _spec_registry
from .experiments import EXPERIMENTS, ExperimentResult, run_experiment
from .serialization import result_from_dict, result_to_dict

__all__ = [
    "SPLIT_AXES",
    "CACHE_VERSION",
    "GridPoint",
    "ResultCache",
    "config_key",
    "expand_grid",
    "merge_results",
    "run_grid",
    "iter_grid",
    "run_experiment_parallel",
]

class _SplitAxesView(dict):
    """Read-through view of each experiment's registered ``split_axes``.

    The axes are declared at definition site (``@experiment(...,
    split_axes=...)`` in :mod:`.experiments`) and land in the experiment
    registry's metadata; this dict mirrors the non-empty entries so existing
    ``SPLIT_AXES[exp_id]`` / ``.get`` call sites keep working.
    """

    def refresh(self) -> "_SplitAxesView":
        for exp_id in _spec_registry.EXPERIMENTS:
            axes = tuple(_spec_registry.EXPERIMENTS.meta(exp_id).get("split_axes") or ())
            if axes:
                self[exp_id] = axes
        return self


# Sweep axes that form the outermost loop(s) of each experiment body, in
# nesting order.  Only experiments whose rows/series are a pure concatenation
# over these axes declare them.
SPLIT_AXES: Dict[str, Tuple[str, ...]] = _SplitAxesView().refresh()

# Bump when a change invalidates previously cached results (algorithm or
# serialisation semantics, not docs).
CACHE_VERSION = 1

GridPoint = Tuple[str, dict]


def _canonical(obj):
    """JSON-stable form: tuples become lists, keys sort, numpy scalars cast."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    return obj


def config_key(exp_id: str, kwargs: dict) -> str:
    """Content hash of one grid point (the cache key)."""
    blob = json.dumps(
        {"v": CACHE_VERSION, "exp_id": exp_id, "kwargs": _canonical(kwargs)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


class ResultCache:
    """One JSON file per completed grid point, keyed by config hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[ExperimentResult]:
        path = self.path(key)
        try:
            data = json.loads(path.read_text())
            result = result_from_dict(data["result"])
        except (OSError, KeyError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, exp_id: str, kwargs: dict, result: ExperimentResult) -> None:
        payload = json.dumps(
            {
                "key": key,
                "exp_id": exp_id,
                "kwargs": _canonical(kwargs),
                "result": result_to_dict(result),
            },
            indent=2,
        )
        # atomic publish: a concurrent reader never sees a half-written file
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def _grid_defaults(exp_id: str) -> dict:
    """Default kwarg values of the experiment's underlying function."""
    fn = EXPERIMENTS[exp_id]
    wrapped = getattr(fn, "__wrapped__", fn)
    out = {}
    for name, param in inspect.signature(wrapped).parameters.items():
        if param.default is not inspect.Parameter.empty:
            out[name] = param.default
    return out


def expand_grid(exp_id: str, kwargs: dict) -> List[dict]:
    """Decompose one experiment call into independent single-point kwargs.

    Returns ``[kwargs]`` unchanged when the experiment has no registered
    split axes.  Otherwise each registered axis (taken from ``kwargs`` or the
    experiment's signature default) is narrowed to a one-element tuple and
    the cartesian product is emitted in loop-nesting order, so concatenating
    the sub-results reproduces the serial iteration order exactly.
    """
    axes = SPLIT_AXES.get(exp_id)
    if not axes:
        return [dict(kwargs)]
    defaults = _grid_defaults(exp_id)
    axis_values: List[Tuple[str, Sequence]] = []
    for axis in axes:
        values = kwargs.get(axis, defaults.get(axis))
        if values is None or not isinstance(values, (list, tuple)):
            return [dict(kwargs)]
        axis_values.append((axis, tuple(values)))
    points = []
    for combo in itertools.product(*(vals for _, vals in axis_values)):
        sub = dict(kwargs)
        for (axis, _), value in zip(axis_values, combo):
            sub[axis] = (value,)
        points.append(sub)
    return points


def merge_results(exp_id: str, parts: Sequence[ExperimentResult]) -> ExperimentResult:
    """Concatenate split-point results back into one ExperimentResult."""
    if not parts:
        raise ValueError("nothing to merge")
    if len(parts) == 1:
        return parts[0]
    rows: List[dict] = []
    series: Dict[str, list] = {}
    notes = ""
    for part in parts:
        rows.extend(part.rows)
        for name, pts in part.series.items():
            if name in series:
                raise ValueError(f"split produced duplicate series {name!r}")
            series[name] = pts
        if not notes and part.notes:
            notes = part.notes
    first = parts[0]
    return ExperimentResult(
        exp_id=first.exp_id,
        title=first.title,
        paper_claim=first.paper_claim,
        rows=rows,
        series=series,
        notes=notes,
    )


def _run_point(exp_id: str, kwargs: dict, runner=None) -> dict:
    """Worker entry: run one grid point, return the serialised result."""
    # a forked pool worker inherits the parent's ambient event bus (and any
    # open sink file descriptors); cell-level progress is the parent's story
    _events.install(None)
    fn = runner if runner is not None else run_experiment
    return result_to_dict(fn(exp_id, **kwargs))


def _resolve_jobs(jobs: int) -> int:
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0 for all cores), got {jobs}")
    return jobs


def iter_grid(
    points: Sequence[GridPoint],
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    mp_context: Optional[str] = None,
    keys: Optional[Sequence[str]] = None,
    runner=None,
) -> Iterator[Tuple[int, ExperimentResult]]:
    """Run grid points, yielding ``(index, result)`` in submission order.

    ``jobs=1`` runs inline (no pool); ``jobs=0`` means one worker per core.
    With ``cache_dir`` set, cached points are served from disk and fresh
    completions are written back immediately, so an interrupted sweep resumes
    where it stopped.

    ``keys`` overrides the cache key per point (same length as ``points``) —
    the spec compiler passes keys derived from the scenario's canonical hash.
    ``runner`` replaces :func:`run_experiment` as the point executor; it must
    be a module-level callable (pool workers pickle it) with the same
    ``(exp_id, **kwargs) -> ExperimentResult`` shape.
    """
    jobs = _resolve_jobs(jobs)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    if keys is None:
        keys = [config_key(exp_id, kwargs) for exp_id, kwargs in points]
    elif len(keys) != len(points):
        raise ValueError(f"{len(keys)} keys for {len(points)} points")
    point_fn = runner if runner is not None else run_experiment

    # sweep-level telemetry: per-cell progress rolled up into the ambient
    # bus's snapshot (all no-ops when no bus is installed)
    streaming = _events.active_bus() is not None
    t0 = time.monotonic()

    def sweep_emit(kind: str, **data) -> None:
        if streaming:
            _events.emit(kind, source="sweep", t=time.monotonic() - t0, **data)

    sweep_emit(
        _events.SWEEP_STARTED,
        exp_id=",".join(sorted({exp_id for exp_id, _ in points})),
        total=len(points),
        jobs=jobs,
    )

    results: Dict[int, ExperimentResult] = {}
    pending: List[int] = []
    for i, key in enumerate(keys):
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            results[i] = hit
        else:
            pending.append(i)

    def finish(i: int, result: ExperimentResult) -> ExperimentResult:
        if cache is not None:
            cache.put(keys[i], points[i][0], points[i][1], result)
        sweep_emit(
            _events.CELL_FINISHED, index=i, exp_id=points[i][0], cached=False
        )
        return result

    def yield_cached(i: int) -> ExperimentResult:
        sweep_emit(
            _events.CELL_FINISHED, index=i, exp_id=points[i][0], cached=True
        )
        return results[i]

    if not pending:
        for i in range(len(points)):
            yield i, yield_cached(i)
        sweep_emit(_events.SWEEP_FINISHED, status="ok")
        return

    if jobs == 1:
        for i in range(len(points)):
            if i in results:
                yield i, yield_cached(i)
            else:
                exp_id, kwargs = points[i]
                sweep_emit(_events.CELL_STARTED, index=i, exp_id=exp_id)
                yield i, finish(i, point_fn(exp_id, **kwargs))
        sweep_emit(_events.SWEEP_FINISHED, status="ok")
        return

    from concurrent.futures import ProcessPoolExecutor

    ctx = multiprocessing.get_context(
        mp_context if mp_context is not None else ("fork" if os.name == "posix" else "spawn")
    )
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending)), mp_context=ctx) as pool:
        futures = {}
        for i in pending:
            sweep_emit(_events.CELL_STARTED, index=i, exp_id=points[i][0])
            futures[i] = pool.submit(_run_point, *points[i], runner)
        for i in range(len(points)):
            if i in results:
                yield i, yield_cached(i)
            else:
                yield i, finish(i, result_from_dict(futures[i].result()))
    sweep_emit(_events.SWEEP_FINISHED, status="ok")


def run_grid(
    points: Sequence[GridPoint],
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    mp_context: Optional[str] = None,
    keys: Optional[Sequence[str]] = None,
    runner=None,
) -> List[ExperimentResult]:
    """Like :func:`iter_grid` but collects into a list (input order)."""
    out: List[Optional[ExperimentResult]] = [None] * len(points)
    for i, result in iter_grid(
        points, jobs=jobs, cache_dir=cache_dir, mp_context=mp_context,
        keys=keys, runner=runner,
    ):
        out[i] = result
    return out  # type: ignore[return-value]


def run_experiment_parallel(
    exp_id: str,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    mp_context: Optional[str] = None,
    backend: Optional[str] = None,
    **kwargs,
) -> ExperimentResult:
    """Drop-in ``run_experiment`` that splits, fans out, caches, and merges.

    ``backend`` (a :mod:`repro.runtime` backend name) rides along in each
    grid point's kwargs: workers pass it to ``run_experiment``, and it is
    part of the cache key, so sim and mp results never alias.
    """
    if exp_id not in EXPERIMENTS:
        _spec_registry.EXPERIMENTS.get(exp_id)  # raises with did-you-mean hints
    if backend is not None:
        kwargs["backend"] = backend
    sub_kwargs = expand_grid(exp_id, kwargs)
    parts = run_grid(
        [(exp_id, sub) for sub in sub_kwargs],
        jobs=jobs,
        cache_dir=cache_dir,
        mp_context=mp_context,
    )
    return merge_results(exp_id, parts)
