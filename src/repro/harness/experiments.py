"""Experiment registry: one entry per table/figure in the paper.

Every experiment is a callable returning an :class:`ExperimentResult` whose
``rows``/``series`` are the same quantities the paper's table or figure
reports.  Grids default to bench scale (see DESIGN.md §"scales"); benchmarks
call them with reduced grids, ``examples/run_all_experiments.py`` runs the
full ones and renders EXPERIMENTS.md's measured numbers.

Scale mapping for convergence experiments (documented substitution): the
bench datasets are ~100× smaller than the paper's, so aggregation intervals
are mapped by *fraction of an epoch between aggregations* rather than by
absolute T — e.g. the paper's T=50 at M=64/n=50 000 aggregates every ~1.02
epochs per 16 learners, which bench CIFAR (M=16, n=512) hits near T=8.
p sweeps are unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algos import (
    DownpourOptions,
    DownpourTrainer,
    EAMSGDOptions,
    EAMSGDTrainer,
    SASGDOptions,
    SASGDTrainer,
    SequentialSGDTrainer,
    TrainerConfig,
    TrainResult,
    cifar_problem,
    nlcf_problem,
)
from ..nn.models import build_cifar10_cnn, build_nlcf_net
from ..theory import (
    SurfaceConstants,
    asgd_gap_factor,
    corollary3_K_threshold,
    corollary3_rate,
    estimate_surface_constants,
    lian_learning_rate,
    optimal_c,
    samples_to_reach,
    sasgd_optimal_bound,
    theorem1_gap_approx,
)
from ..cluster.machine import (
    Machine,
    fat_tree_spec,
    power8_cluster_spec,
    torus_spec,
)
from ..comm.collectives import contiguous_groups
from ..spec import registry as _spec_registry
from .calibration import PAPER_PROFILE
from .timing import TimingWorkload, simulate_epoch_time

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "list_experiments"]


@dataclass
class ExperimentResult:
    """What a paper table/figure reports, in data form."""

    exp_id: str
    title: str
    paper_claim: str
    rows: List[dict] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def experiment(
    exp_id: str,
    title: str,
    paper_claim: str,
    split_axes: Tuple[str, ...] = (),
):
    """Register a figure/table reproduction under ``exp_id``.

    ``split_axes`` names the sweep axes forming the experiment body's
    *outermost* loop(s), in nesting order — the axes along which the grid
    runner may decompose a full-grid call into independent single-point
    calls whose concatenated rows/series are bit-identical to the one-shot
    run.  Leave empty for experiments with cross-axis state (e.g. fig4's
    shared sequential-baseline row).
    """

    def wrap(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        def run(**kwargs) -> ExperimentResult:
            result = fn(**kwargs)
            result.exp_id = exp_id
            result.title = title
            result.paper_claim = paper_claim
            return result

        run.__name__ = fn.__name__
        run.__doc__ = fn.__doc__
        run.__wrapped__ = fn  # expose the signature (grid defaults) to the parallel runner
        EXPERIMENTS[exp_id] = run
        _spec_registry.EXPERIMENTS.register(
            exp_id, run, title=title, claim=paper_claim,
            split_axes=tuple(split_axes),
        )
        return run

    return wrap


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    if exp_id not in EXPERIMENTS:
        # registry error: names the value, suggests close matches
        _spec_registry.EXPERIMENTS.get(exp_id)
    fn = EXPERIMENTS[exp_id]
    # `backend` is ambient rather than a per-experiment parameter: every
    # trainer the experiment constructs picks it up, and experiment
    # signatures stay backend-free.  Timing-model experiments (fig1/4/5/6)
    # ignore it — they simulate wire schedules, not trainers.
    backend = kwargs.pop("backend", None)
    timeout = kwargs.pop("backend_timeout", None)
    if backend is None:
        return fn(**kwargs)
    from ..runtime import use_backend

    backend_kwargs = {}
    if timeout is not None and backend == "mp":
        # the sim backend has no starvation timeout; silently drop it there
        backend_kwargs["timeout"] = timeout
    with use_backend(backend, **backend_kwargs):
        return fn(**kwargs)


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def _acc_series(res: TrainResult) -> List[Tuple[float, float]]:
    return [(float(e), float(a)) for e, a in res.test_accuracy_series()]


def _train_series(res: TrainResult) -> List[Tuple[float, float]]:
    return [(float(r.epoch), float(r.train_acc)) for r in res.records]


# --------------------------------------------------------------------------
# Tables I and II — the network architectures
# --------------------------------------------------------------------------


@experiment(
    "table1",
    "CIFAR-10 convolutional network",
    "4 conv/ReLU/pool/dropout stages + FC 128x10; ~0.5M parameters",
)
def table1(width: float = 1.0) -> ExperimentResult:
    model, _crit, info = build_cifar10_cnn(width=width)
    rows = model.layer_summary((3, 32, 32))
    rows.append(
        {
            "layer": "TOTAL",
            "config": "",
            "in_shape": (3, 32, 32),
            "out_shape": (10,),
            "params": info.num_parameters,
            "flops": info.flops_forward_per_example,
        }
    )
    return ExperimentResult(
        "", "", "", rows=rows, notes=f"total parameters: {info.num_parameters:,}"
    )


@experiment(
    "table2",
    "NLC-F sentence network",
    "per-token FC/tanh + temporal conv(1000,2) + pooling + FC head; ~2M parameters",
)
def table2(width: float = 1.0) -> ExperimentResult:
    model, _crit, info = build_nlcf_net(width=width)
    rows = model.layer_summary((20, 100))
    rows.append(
        {
            "layer": "TOTAL",
            "config": "",
            "in_shape": (20, 100),
            "out_shape": (311,),
            "params": info.num_parameters,
            "flops": info.flops_forward_per_example,
        }
    )
    return ExperimentResult(
        "", "", "", rows=rows, notes=f"total parameters: {info.num_parameters:,}"
    )


# --------------------------------------------------------------------------
# Timing experiments (paper-scale models on the calibrated machine)
# --------------------------------------------------------------------------


def _paper_workloads() -> Dict[str, TimingWorkload]:
    _, _, cinfo = build_cifar10_cnn()
    _, _, ninfo = build_nlcf_net()
    return {
        "CIFAR-10": TimingWorkload.from_model_info(cinfo, n_train=50_000),
        "NLC-F": TimingWorkload.from_model_info(ninfo, n_train=2_500),
    }


@experiment(
    "fig1",
    "Breakdown of Downpour epoch time into computation and communication",
    "communication >60% for NLC-F at every p; ~20% rising to ~30% for CIFAR-10",
)
def fig1(p_values: Sequence[int] = (1, 2, 4, 8), epochs: int = 1) -> ExperimentResult:
    rows = []
    for label, wl in _paper_workloads().items():
        for p in p_values:
            r = simulate_epoch_time("downpour", wl, p=p, T=1, epochs=epochs)
            rows.append(
                {
                    "workload": label,
                    "p": p,
                    "epoch_s": round(r.epoch_seconds, 2),
                    "compute_s": round(r.compute_seconds, 2),
                    "comm_s": round(r.comm_seconds, 2),
                    "comm_%": round(100 * r.comm_fraction, 1),
                }
            )
    return ExperimentResult("", "", "", rows=rows)


def _fig45(workload_label: str, T_values, p_values, epochs) -> ExperimentResult:
    wl = _paper_workloads()[workload_label]
    seq = simulate_epoch_time("sgd", wl, p=1, T=10**9, epochs=epochs)
    rows = [
        {
            "T": "-",
            "p": 1,
            "epoch_s": round(seq.epoch_seconds, 2),
            "speedup": 1.0,
            "note": "sequential",
        }
    ]
    for T in T_values:
        for p in p_values:
            r = simulate_epoch_time("sasgd", wl, p=p, T=T, epochs=epochs)
            rows.append(
                {
                    "T": T,
                    "p": p,
                    "epoch_s": round(r.epoch_seconds, 2),
                    "speedup": round(seq.epoch_seconds / r.epoch_seconds, 2),
                    "note": "",
                }
            )
    return ExperimentResult("", "", "", rows=rows)


@experiment(
    "fig4",
    "Impact of T on SASGD epoch time, CIFAR-10",
    "T=50 faster than T=1 (paper: 1.3x at 8 learners); speedup 4.45x at 8 learners",
)
def fig4(
    T_values: Sequence[int] = (1, 50),
    p_values: Sequence[int] = (1, 2, 4, 8),
    epochs: int = 1,
) -> ExperimentResult:
    return _fig45("CIFAR-10", T_values, p_values, epochs)


@experiment(
    "fig5",
    "Impact of T on SASGD epoch time, NLC-F",
    "T=50 much faster than T=1 (paper: 9.7x at 8 learners); speedup 5.35x at 8 learners",
)
def fig5(
    T_values: Sequence[int] = (1, 50),
    p_values: Sequence[int] = (1, 2, 4, 8),
    epochs: int = 1,
) -> ExperimentResult:
    return _fig45("NLC-F", T_values, p_values, epochs)


@experiment(
    "fig6",
    "Epoch time of Downpour/EAMSGD/SASGD with 8 learners, T=1 and T=50",
    "SASGD much faster at T=1 (lower communication complexity); all similar at T=50",
)
def fig6(
    T_values: Sequence[int] = (1, 50), p: int = 8, epochs: int = 1
) -> ExperimentResult:
    rows = []
    for label, wl in _paper_workloads().items():
        for T in T_values:
            for algo in ("downpour", "eamsgd", "sasgd"):
                r = simulate_epoch_time(algo, wl, p=p, T=T, epochs=epochs)
                rows.append(
                    {
                        "workload": label,
                        "T": T,
                        "algorithm": algo,
                        "epoch_s": round(r.epoch_seconds, 2),
                        "comm_%": round(100 * r.comm_fraction, 1),
                    }
                )
    return ExperimentResult("", "", "", rows=rows)


# --------------------------------------------------------------------------
# Convergence experiments (bench scale, real training on the simulated
# cluster)
# --------------------------------------------------------------------------

_BENCH_CIFAR_LR = 0.05
_BENCH_CIFAR_BATCH = 16
_BENCH_NLCF_LR = 0.05
_BENCH_NLCF_BATCH = 1


def _cifar_cfg(p: int, epochs: int, lr: float, seed: int, eval_every: int) -> TrainerConfig:
    return TrainerConfig(
        p=p,
        epochs=epochs,
        batch_size=_BENCH_CIFAR_BATCH,
        lr=lr,
        seed=seed,
        eval_every=eval_every,
    )


def _nlcf_cfg(p: int, epochs: int, lr: float, seed: int, eval_every: int) -> TrainerConfig:
    return TrainerConfig(
        p=p,
        epochs=epochs,
        batch_size=_BENCH_NLCF_BATCH,
        lr=lr,
        seed=seed,
        eval_every=eval_every,
    )


@experiment(
    "fig2",
    "Downpour (ASGD) convergence for CIFAR-10 with the practical learning rate",
    "with constant practical γ, the accuracy gap to SGD grows with p: "
    "convergence speedup is sublinear",
    split_axes=("p_values",),
)
def fig2(
    p_values: Sequence[int] = (1, 2, 8, 16),
    epochs: int = 30,
    lr: float = _BENCH_CIFAR_LR,
    seed: int = 5,
    eval_every: int = 3,
    scale: str = "bench",
) -> ExperimentResult:
    prob = cifar_problem(scale=scale, seed=seed)
    series = {}
    rows = []
    for p in p_values:
        if p == 1:
            res = SequentialSGDTrainer(prob, _cifar_cfg(1, epochs, lr, seed, eval_every)).train()
        else:
            res = DownpourTrainer(
                prob,
                _cifar_cfg(p, epochs, lr, seed, eval_every),
                DownpourOptions(T=4),
            ).train()
        series[f"p={p}"] = _acc_series(res)
        rows.append(
            {
                "p": p,
                "final_test_acc": round(res.final_test_acc or 0.0, 3),
                "staleness_mean": round(float(res.extras.get("staleness_mean", 0.0)), 1),
            }
        )
    return ExperimentResult("", "", "", rows=rows, series=series)


@experiment(
    "fig3",
    "Downpour convergence for CIFAR-10 with the theory learning rate",
    "with the tiny γ from Lian et al.'s analysis the curves for all p overlap "
    "(linear convergence speedup) but reach much worse accuracy than practical γ",
    split_axes=("p_values",),
)
def fig3(
    p_values: Sequence[int] = (1, 2, 8, 16),
    epochs: int = 30,
    seed: int = 5,
    eval_every: int = 3,
    theory_lr: Optional[float] = None,
    theory_samples: int = 500_000,
    scale: str = "bench",
) -> ExperimentResult:
    # The paper derives its theory γ from the *full* tuning budget
    # ("we use M·K = 500 000"), not from however many epochs a particular
    # run executes, so the lian rate here uses the same 500 000-sample
    # budget while the bench schedule runs its (shorter) epochs.
    prob = cifar_problem(scale=scale, seed=seed)
    if theory_lr is None:
        sc = estimate_surface_constants(
            prob, M=_BENCH_CIFAR_BATCH, seed=seed, n_variance_samples=8, n_lipschitz_probes=2
        )
        K = max(1, theory_samples // _BENCH_CIFAR_BATCH)
        theory_lr = lian_learning_rate(sc, M=_BENCH_CIFAR_BATCH, K=K)
    series = {}
    rows = []
    for p in p_values:
        if p == 1:
            res = SequentialSGDTrainer(
                prob, _cifar_cfg(1, epochs, theory_lr, seed, eval_every)
            ).train()
        else:
            res = DownpourTrainer(
                prob,
                _cifar_cfg(p, epochs, theory_lr, seed, eval_every),
                DownpourOptions(T=4),
            ).train()
        series[f"p={p}"] = _acc_series(res)
        rows.append({"p": p, "final_test_acc": round(res.final_test_acc or 0.0, 3)})
    return ExperimentResult(
        "", "", "", rows=rows, series=series, notes=f"theory lr = {theory_lr:.4g}"
    )


def _sasgd_T_sweep(problem_kind, T_values, p_values, epochs, lr, seed, eval_every, scale):
    series = {}
    rows = []
    for p in p_values:
        for T in T_values:
            if problem_kind == "cifar":
                prob = cifar_problem(scale=scale, seed=seed)
                cfg = _cifar_cfg(p, epochs, lr, seed, eval_every)
            else:
                prob = nlcf_problem(scale=scale, seed=seed)
                cfg = _nlcf_cfg(p, epochs, lr, seed, eval_every)
            res = SASGDTrainer(prob, cfg, SASGDOptions(T=T)).train()
            series[f"p={p},T={T}"] = _acc_series(res)
            rows.append(
                {
                    "p": p,
                    "T": T,
                    "final_test_acc": round(res.final_test_acc or 0.0, 3),
                    "final_train_acc": round(res.final_train_acc or 0.0, 3),
                }
            )
    return ExperimentResult("", "", "", rows=rows, series=series)


@experiment(
    "fig7",
    "SASGD test accuracy vs epochs for several T, CIFAR-10",
    "accuracy after a fixed number of epochs degrades as T grows; the "
    "degradation is negligible for small p and grows with p",
    split_axes=("p_values", "T_values"),
)
def fig7(
    T_values: Sequence[int] = (1, 2, 4, 8),
    p_values: Sequence[int] = (2, 4, 8, 16),
    epochs: int = 30,
    lr: float = _BENCH_CIFAR_LR,
    seed: int = 5,
    eval_every: int = 3,
    scale: str = "bench",
) -> ExperimentResult:
    return _sasgd_T_sweep("cifar", T_values, p_values, epochs, lr, seed, eval_every, scale)


@experiment(
    "fig8",
    "SASGD test accuracy vs epochs for several T, NLC-F",
    "same sweep as Fig 7 on NLC-F; degradation with T is milder and large T "
    "can even win at p=16",
    split_axes=("p_values", "T_values"),
)
def fig8(
    T_values: Sequence[int] = (1, 2, 8, 16),
    p_values: Sequence[int] = (2, 4, 8, 16),
    epochs: int = 30,
    lr: float = _BENCH_NLCF_LR,
    seed: int = 5,
    eval_every: int = 3,
    scale: str = "bench",
) -> ExperimentResult:
    return _sasgd_T_sweep("nlcf", T_values, p_values, epochs, lr, seed, eval_every, scale)


def _compare_algos(problem_kind, p_values, T, epochs, lr, seed, eval_every, scale):
    series = {}
    rows = []
    for p in p_values:
        if problem_kind == "cifar":
            mkprob = lambda: cifar_problem(scale=scale, seed=seed)
            mkcfg = lambda: _cifar_cfg(p, epochs, lr, seed, eval_every)
        else:
            mkprob = lambda: nlcf_problem(scale=scale, seed=seed)
            mkcfg = lambda: _nlcf_cfg(p, epochs, lr, seed, eval_every)
        trainers = {
            "downpour": lambda: DownpourTrainer(mkprob(), mkcfg(), DownpourOptions(T=T)),
            "eamsgd": lambda: EAMSGDTrainer(
                mkprob(), mkcfg(), EAMSGDOptions(tau=T, momentum=0.5)
            ),
            "sasgd": lambda: SASGDTrainer(mkprob(), mkcfg(), SASGDOptions(T=T)),
        }
        for algo, mk in trainers.items():
            res = mk().train()
            series[f"{algo},p={p},test"] = _acc_series(res)
            series[f"{algo},p={p},train"] = _train_series(res)
            rows.append(
                {
                    "p": p,
                    "algorithm": algo,
                    "final_test_acc": round(res.final_test_acc or 0.0, 3),
                    "final_train_acc": round(res.final_train_acc or 0.0, 3),
                }
            )
    return ExperimentResult("", "", "", rows=rows, series=series)


@experiment(
    "fig9",
    "Training/test accuracy of Downpour vs EAMSGD vs SASGD, CIFAR-10, large T",
    "SASGD > EAMSGD > Downpour; Downpour erratic from p=4 and near random guess "
    "at p=16; the SASGD-EAMSGD gap widens with p",
    split_axes=("p_values",),
)
def fig9(
    p_values: Sequence[int] = (2, 4, 8, 16),
    T: int = 4,
    epochs: int = 30,
    lr: float = _BENCH_CIFAR_LR,
    seed: int = 5,
    eval_every: int = 3,
    scale: str = "bench",
) -> ExperimentResult:
    return _compare_algos("cifar", p_values, T, epochs, lr, seed, eval_every, scale)


@experiment(
    "fig10",
    "Training/test accuracy of Downpour vs EAMSGD vs SASGD, NLC-F, large T",
    "SASGD stays near the sequential accuracy at every p while Downpour and "
    "EAMSGD collapse toward random guess at p>=8",
    split_axes=("p_values",),
)
def fig10(
    p_values: Sequence[int] = (2, 4, 8, 16),
    T: int = 16,
    epochs: int = 30,
    lr: float = _BENCH_NLCF_LR,
    seed: int = 5,
    eval_every: int = 3,
    scale: str = "bench",
) -> ExperimentResult:
    return _compare_algos("nlcf", p_values, T, epochs, lr, seed, eval_every, scale)


# --------------------------------------------------------------------------
# Theory experiments
# --------------------------------------------------------------------------


@experiment(
    "theorem1",
    "ASGD guarantee gap between 1 and p learners",
    "optimal guarantees differ by ~p/α for 16 <= α <= p (e.g. factor 2 for "
    "p=32 at α≈16, the paper's 50-epoch CIFAR-10 setting)",
)
def theorem1(
    alpha_values: Sequence[float] = (16.0, 20.0, 24.0, 32.0),
    p_values: Sequence[int] = (16, 32, 64, 128),
) -> ExperimentResult:
    rows = []
    for alpha in alpha_values:
        for p in p_values:
            if p < alpha:
                continue
            rows.append(
                {
                    "alpha": alpha,
                    "p": p,
                    "optimal_c": round(optimal_c(alpha, p), 4),
                    "exact_gap": round(asgd_gap_factor(alpha, p), 3),
                    "approx_p_over_alpha": round(theorem1_gap_approx(alpha, p), 3),
                }
            )
    return ExperimentResult("", "", "", rows=rows)


@experiment(
    "theorems_sasgd",
    "SASGD bounds: Theorem 2 optimum, Corollary 3 regime, Theorem 4 monotonicity",
    "the optimal guarantee and the sample complexity both increase with T; "
    "the K needed for the asymptotic O(1/sqrt(S)) rate grows with T",
)
def theorems_sasgd(
    T_values: Sequence[int] = (1, 5, 25, 50),
    p: int = 8,
    M: int = 64,
    S: int = 5_000_000,
    target: float = 1.0,
    constants: Optional[SurfaceConstants] = None,
) -> ExperimentResult:
    sc = constants if constants is not None else SurfaceConstants(Df=2.3, L=50.0, sigma2=100.0)
    rows = []
    for T in T_values:
        rows.append(
            {
                "T": T,
                "optimal_bound_at_S": round(sasgd_optimal_bound(sc, M, T, p, S), 5),
                "samples_to_target": samples_to_reach(sc, M, T, p, target),
                "K_threshold_cor3": int(corollary3_K_threshold(sc, M, T, p)),
                "asymptotic_rate_cor3": round(corollary3_rate(sc, S), 5),
            }
        )
    return ExperimentResult(
        "",
        "",
        "",
        rows=rows,
        notes=f"constants: Df={sc.Df}, L={sc.L}, sigma2={sc.sigma2}; p={p}, M={M}",
    )


@experiment(
    "traffic",
    "Data moved per aggregation: allreduce O(m log p) vs parameter server O(m p)",
    "SASGD transports O(m log p) per aggregation (tree allreduce) while a "
    "parameter server transports O(m p); the PS bytes all cross one host channel",
)
def traffic(p_values: Sequence[int] = (2, 4, 8, 16)) -> ExperimentResult:
    from ..comm.costmodel import allreduce_traffic_bytes, ps_traffic_bytes

    _, _, cinfo = build_cifar10_cnn()
    m = cinfo.param_bytes
    rows = []
    for p in p_values:
        rows.append(
            {
                "p": p,
                "allreduce_tree_MB": round(allreduce_traffic_bytes(m, p, "tree") / 2**20, 1),
                "allreduce_critical_path_MB": round(
                    allreduce_traffic_bytes(m, p, "tree_depth") / 2**20, 1
                ),
                "param_server_MB": round(ps_traffic_bytes(m, p) / 2**20, 1),
                "ratio_ps_over_critical": round(
                    ps_traffic_bytes(m, p)
                    / allreduce_traffic_bytes(m, p, "tree_depth"),
                    2,
                ),
            }
        )
    return ExperimentResult("", "", "", rows=rows, notes=f"m = {m/2**20:.1f} MiB (CIFAR-10 model)")


def _scaling_machine(topology: str, p: int, n_nodes: int, n_hosts: int) -> Machine:
    """The simulated machine for one scaling cell (fresh engine per cell)."""
    prof = PAPER_PROFILE
    if topology == "cluster":
        return Machine(
            power8_cluster_spec(
                n_nodes=n_nodes,
                gpu_flops=prof.gpu_flops,
                gpu_jitter=prof.gpu_jitter,
                gpu_overhead=prof.step_overhead,
                host_flops=prof.host_flops,
                host_overhead=prof.ps_request_overhead,
                tree_bandwidth=prof.tree_bandwidth,
                tree_latency=prof.tree_latency,
                host_bandwidth=prof.host_bandwidth,
                host_latency=prof.host_latency,
            ),
            seed=0,
        )
    if topology == "fat-tree":
        return Machine(
            fat_tree_spec(
                n_gpus=p,
                gpu_flops=prof.gpu_flops,
                gpu_jitter=prof.gpu_jitter,
                gpu_overhead=prof.step_overhead,
                host_flops=prof.host_flops,
                host_overhead=prof.ps_request_overhead,
                leaf_bandwidth=prof.tree_bandwidth,
                leaf_latency=prof.tree_latency,
                n_hosts=n_hosts,
                host_bandwidth=prof.host_bandwidth,
                host_latency=prof.host_latency,
            ),
            seed=0,
        )
    if topology == "torus":
        rows = 1 << (max(p.bit_length() - 1, 0) // 2)
        cols = p // rows
        if rows * cols != p:
            raise ValueError(f"torus scaling cell needs power-of-two p, got {p}")
        return Machine(
            torus_spec(
                rows=rows,
                cols=cols,
                gpu_flops=prof.gpu_flops,
                gpu_jitter=prof.gpu_jitter,
                gpu_overhead=prof.step_overhead,
                host_flops=prof.host_flops,
                host_overhead=prof.ps_request_overhead,
                link_bandwidth=prof.tree_bandwidth,
                link_latency=prof.tree_latency,
                n_hosts=n_hosts,
                host_bandwidth=prof.host_bandwidth,
                host_latency=prof.host_latency,
            ),
            seed=0,
        )
    raise ValueError(f"unknown scaling topology {topology!r}")


@experiment(
    "scaling",
    "SASGD vs parameter server as future systems grow to p=1024 (conclusion claim)",
    "\"As the number of GPUs in future systems is likely to increase, we expect "
    "SASGD [to] perform better than ASGD implementations\": on multi-node, "
    "fat-tree and torus machines the PS epoch time stops improving with p "
    "while SASGD keeps scaling through p=1024",
)
def scaling(
    p_values: Sequence[int] = (8, 16, 32),
    n_nodes: int = 4,
    T: int = 1,
    epochs: int = 1,
    topology: str = "cluster",
    comm_mode: Optional[str] = None,
    group_size: int = 8,
    n_hosts: int = 4,
    n_shards: int = 8,
) -> ExperimentResult:
    """Timing-only NLC-F epoch-time curves, SASGD vs Downpour, at scale.

    ``topology`` picks the machine family:

    * ``"cluster"`` (default) — the original conclusion cell: ``n_nodes``
      Power8/OSS nodes, centralised PS on node 0, ring allreduce.  Learners
      share GPUs once p exceeds the GPU count, as in the paper's MPS setup.
    * ``"fat-tree"`` — one GPU leaf per learner under a constant-bisection
      fat-tree, ``n_hosts`` PS hosts at the root, hierarchical allreduce
      (``group_size`` leaves per group) and an ``n_shards``-shard PS.
    * ``"torus"`` — one GPU per node of a 2-D torus, hosts anchored around
      the ring, same hierarchy/sharding.

    ``comm_mode=None`` picks per-cell: the per-message fabric up to p=32
    (reference fidelity) and the vectorised wave fabric beyond, which is what
    makes the p=128–1024 cells tractable (see DESIGN §11).
    """
    _, _, ninfo = build_nlcf_net()
    wl = TimingWorkload.from_model_info(ninfo, n_train=2_500)
    rows = []
    for p in p_values:
        cell_mode = comm_mode or ("message" if p <= 32 else "vector")
        if topology == "cluster":
            algo_kwargs: Dict[str, dict] = {
                "sasgd": dict(allreduce_algorithm="ring"),
                "downpour": dict(),
            }
        else:
            hosts = [f"host{h}" for h in range(n_hosts)] if n_hosts > 1 else ["host"]
            algo_kwargs = {
                "sasgd": dict(
                    allreduce_algorithm="hierarchical",
                    allreduce_groups=contiguous_groups(p, group_size),
                ),
                "downpour": dict(n_shards=n_shards, ps_hosts=hosts),
            }
        for algo in ("sasgd", "downpour"):
            machine = _scaling_machine(topology, p, n_nodes, n_hosts)
            r = simulate_epoch_time(
                algo,
                wl,
                p=p,
                T=T,
                epochs=epochs,
                machine=machine,
                comm_mode=cell_mode,
                **algo_kwargs[algo],
            )
            rows.append(
                {
                    "p": p,
                    "algorithm": algo,
                    "topology": topology,
                    "comm_mode": cell_mode,
                    "epoch_s": round(r.epoch_seconds, 4),
                    "comm_%": round(100 * r.comm_fraction, 1),
                    "GB_per_epoch": round(r.total_bytes_per_epoch / 1e9, 3),
                }
            )
    label = {
        "cluster": f"{n_nodes} nodes x 8 GPUs",
        "fat-tree": f"fat-tree, {n_hosts} hosts, groups of {group_size}",
        "torus": f"2-D torus, {n_hosts} hosts, groups of {group_size}",
    }[topology]
    return ExperimentResult(
        "", "", "", rows=rows, notes=f"{label}, T={T}, NLC-F scale"
    )


@experiment(
    "averaging",
    "Model-averaging heuristics vs SASGD (Sec. III discussion)",
    "one-shot averaging \"results in very poor training and test accuracies\"; "
    "per-minibatch averaging works but pays maximal communication (= SASGD T=1)",
)
def averaging(
    p: int = 4,
    epochs: int = 12,
    lr: float = _BENCH_CIFAR_LR,
    seed: int = 5,
    scale: str = "bench",
) -> ExperimentResult:
    from ..algos import MinibatchAveragingTrainer, OneShotAveragingTrainer

    prob = cifar_problem(scale=scale, seed=seed)
    cfg = _cifar_cfg(p, epochs, lr, seed, eval_every=epochs)
    rows = []
    runs = {
        "oneshot-averaging": OneShotAveragingTrainer(prob, cfg),
        "minibatch-averaging": MinibatchAveragingTrainer(prob, cfg),
        "sasgd(T=4)": SASGDTrainer(prob, cfg, SASGDOptions(T=4)),
    }
    for name, trainer in runs.items():
        res = trainer.train()
        rows.append(
            {
                "method": name,
                "final_train_acc": round(res.final_train_acc or 0.0, 3),
                "final_test_acc": round(res.final_test_acc or 0.0, 3),
            }
        )
    return ExperimentResult("", "", "", rows=rows)
