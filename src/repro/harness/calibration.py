"""Calibration of the simulated testbed against the paper's platform.

The paper's numbers come from an IBM Power8 + 8×K80 OSS accelerator running
Torch with CUDA-aware OpenMPI (mpiT).  We cannot measure that machine, so the
simulator's free constants are *fit to the paper's own reported magnitudes*,
then every figure is derived, not fit:

* ``gpu_flops`` = 2e12 — achieved K80 throughput on the conv GEMMs; puts one
  CIFAR-10 minibatch (M=64) at ≈ 8.5 ms + overhead.
* ``step_overhead`` = 2.5 ms/minibatch — Torch dispatch + kernel launches.
  This makes the M = 1 NLC-F workload overhead-dominated (2 500 steps ⇒ ≈ 6 s
  sequential epoch, the Fig. 5 magnitude), which is why its communication
  fraction exceeds 60 % under Downpour (Fig. 1) and why raising T buys it a
  far bigger epoch-time win than CIFAR-10 (9.7× vs 1.3×, Figs. 4–5).
* ``gpu_jitter`` = 0.12 — per-step speed variation across learners; drives
  both the bulk-synchronous straggler penalty and the asynchronous-staleness
  distribution.
* ``tree_bandwidth`` = 10 GB/s, ``host_bandwidth`` = 2.5 GB/s — *effective*
  MPI-era throughputs (software copies included) of the GPU PCIe tree and the
  narrower learner↔host channel.  The ratio, plus the fact that PS traffic is
  O(m·p) through one link while allreduce is O(m log p) over the tree, drives
  every comm-fraction shape.
* ``ps_request_overhead`` = 0.2 ms and ``ps_apply_flops_per_param`` = 300 —
  parameter-server request handling and memory-bound CPU apply; fits the
  paper's 20→30 % CIFAR-10 Downpour communication share (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.machine import Machine, MachineSpec, power8_oss_spec

__all__ = ["CalibrationProfile", "PAPER_PROFILE", "calibrated_machine"]


@dataclass(frozen=True)
class CalibrationProfile:
    """Free constants of the simulated testbed (see module docstring)."""

    gpu_flops: float = 2.0e12
    step_overhead: float = 2.5e-3
    gpu_jitter: float = 0.12
    host_flops: float = 1.5e11
    tree_bandwidth: float = 10.0e9
    tree_latency: float = 5e-5
    host_bandwidth: float = 2.5e9
    host_latency: float = 5e-5
    ps_request_overhead: float = 2e-4
    ps_apply_flops_per_param: float = 300.0
    n_gpus: int = 8

    def machine_spec(self) -> MachineSpec:
        return power8_oss_spec(
            n_gpus=self.n_gpus,
            gpu_flops=self.gpu_flops,
            gpu_jitter=self.gpu_jitter,
            gpu_overhead=self.step_overhead,
            host_flops=self.host_flops,
            host_overhead=self.ps_request_overhead,
            tree_bandwidth=self.tree_bandwidth,
            tree_latency=self.tree_latency,
            host_bandwidth=self.host_bandwidth,
            host_latency=self.host_latency,
        )


PAPER_PROFILE = CalibrationProfile()


def calibrated_machine(
    profile: CalibrationProfile = PAPER_PROFILE, seed: int = 0
) -> Machine:
    """A fresh simulated Power8/OSS machine under ``profile``."""
    return Machine(profile.machine_spec(), seed=seed)
