"""Substrate microbenchmarks and persisted performance baselines.

``repro bench`` times the hot kernels the trainers spend their lives in —
Conv2d forward/backward at the bench CIFAR shape, the temporal (1-D)
convolution, im2col/col2im, optimiser steps over flat parameters, one SASGD
aggregation interval — plus one small end-to-end figure experiment, and
writes the numbers to ``BENCH_<git-rev>.json``.

The optimised conv kernels are timed **against the verbatim pre-optimisation
code paths** preserved in :mod:`repro.nn.reference`, so the reported speedup
factors are honest "vs the code this PR replaced" numbers rather than vs a
strawman.  A committed baseline file plus :func:`compare_to_baseline` gives
CI a cheap regression tripwire: wall-clock on shared runners is noisy, so
the default threshold is a generous 2×.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "BENCH_SCHEMA",
    "DERIVED_FLOORS",
    "run_benchmarks",
    "save_bench",
    "load_bench",
    "default_bench_path",
    "compare_to_baseline",
    "format_bench",
]

BENCH_SCHEMA = "repro-bench/1"

# The bench CIFAR-10 conv shape (benchmarks/test_microbench_substrate.py and
# the ISSUE acceptance criterion both pin this): 3×3 conv, padding 1, on a
# 16-sample batch of 16×16×16 feature maps.
_CONV_N, _CONV_C, _CONV_F, _CONV_HW, _CONV_K, _CONV_PAD = 16, 16, 32, 16, 3, 1


def _time(fn: Callable[[], object], reps: int, warmup: int = 2) -> Tuple[float, int]:
    """Best-of-``reps`` seconds per call (min is robust to scheduler noise)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best, reps


def _entry(seconds: float, reps: int, **extra) -> Dict[str, object]:
    out: Dict[str, object] = {
        "seconds": seconds,
        "ops_per_sec": (1.0 / seconds) if seconds > 0 else float("inf"),
        "reps": reps,
    }
    out.update(extra)
    return out


# --------------------------------------------------------------------------
# individual benchmarks
# --------------------------------------------------------------------------


def _bench_conv2d(reps: int) -> Dict[str, Dict[str, object]]:
    from ..nn.conv import Conv2d
    from ..nn.reference import conv2d_backward_legacy, conv2d_forward_legacy

    rng = np.random.default_rng(0)
    conv = Conv2d(_CONV_C, _CONV_F, _CONV_K, padding=_CONV_PAD, rng=rng)
    x = rng.standard_normal(
        (_CONV_N, _CONV_C, _CONV_HW, _CONV_HW), dtype=np.float32
    )
    y = conv.forward(x)
    gout = rng.standard_normal(y.shape, dtype=np.float32)
    shape = {"x_shape": list(x.shape), "filters": _CONV_F, "kernel": _CONV_K}

    fwd_s, fwd_r = _time(lambda: conv.forward(x), reps)

    def fast_step() -> None:
        conv.zero_grad()
        conv.forward(x)
        conv.backward(gout)

    fb_s, fb_r = _time(fast_step, reps)

    w, b = conv.weight.data, conv.bias.data if conv.bias is not None else None

    def legacy_step() -> None:
        yl, col = conv2d_forward_legacy(x, w, b, stride=1, pad=_CONV_PAD)
        conv2d_backward_legacy(col, x.shape, w, gout, stride=1, pad=_CONV_PAD)

    lg_s, lg_r = _time(legacy_step, reps)

    return {
        "conv2d_forward": _entry(fwd_s, fwd_r, **shape),
        "conv2d_forward_backward": _entry(fb_s, fb_r, **shape),
        "conv2d_forward_backward_legacy": _entry(lg_s, lg_r, **shape),
    }


def _bench_im2col(reps: int) -> Dict[str, Dict[str, object]]:
    from ..nn.bufferpool import BufferPool
    from ..nn.functional import conv_plan

    rng = np.random.default_rng(1)
    x = rng.standard_normal(
        (_CONV_N, _CONV_C, _CONV_HW, _CONV_HW), dtype=np.float32
    )
    plan = conv_plan(*x.shape, _CONV_K, _CONV_K, 1, _CONV_PAD)
    pool = BufferPool()
    col = plan.extract(x, pool)
    gcol = np.ascontiguousarray(col)

    i2c_s, i2c_r = _time(lambda: plan.extract(x, pool), reps)
    c2i_s, c2i_r = _time(lambda: plan.fold(gcol, pool), reps)
    return {
        "im2col_plan": _entry(i2c_s, i2c_r, x_shape=list(x.shape)),
        "col2im_plan": _entry(c2i_s, c2i_r, x_shape=list(x.shape)),
    }


def _bench_temporal(reps: int) -> Dict[str, Dict[str, object]]:
    from ..nn.reference import (
        temporal_conv_backward_legacy,
        temporal_conv_forward_legacy,
    )
    from ..nn.temporal import TemporalConvolution

    rng = np.random.default_rng(2)
    n, ell, cin, cout, kw = 32, 256, 64, 64, 5
    tc = TemporalConvolution(cin, cout, kw, rng=rng)
    x = rng.standard_normal((n, ell, cin), dtype=np.float32)
    y = tc.forward(x)
    gout = rng.standard_normal(y.shape, dtype=np.float32)
    shape = {"x_shape": [n, ell, cin], "cout": cout, "kw": kw}

    def fast_step() -> None:
        tc.zero_grad()
        tc.forward(x)
        tc.backward(gout)

    fb_s, fb_r = _time(fast_step, reps)

    w = tc.weight.data
    b = tc.bias.data if tc.bias is not None else None

    def legacy_step() -> None:
        yl, col = temporal_conv_forward_legacy(x, w, b, kw)
        temporal_conv_backward_legacy(col, x.shape, w, gout, kw)

    lg_s, lg_r = _time(legacy_step, reps)
    return {
        "temporal_conv_forward_backward": _entry(fb_s, fb_r, **shape),
        "temporal_conv_forward_backward_legacy": _entry(lg_s, lg_r, **shape),
    }


def _bench_sgd(reps: int) -> Dict[str, Dict[str, object]]:
    from ..nn.models import build_cifar10_cnn
    from ..nn.module import flatten_module
    from ..nn.optim import SGD, MomentumSGD

    rng = np.random.default_rng(3)
    model, _, _ = build_cifar10_cnn(width=0.25, rng=rng)
    flat = flatten_module(model)
    flat.grad[...] = rng.standard_normal(flat.size).astype(flat.grad.dtype)
    dim = {"dim": int(flat.size)}

    sgd = SGD(flat, lr=1e-4, weight_decay=1e-4)
    sgd_s, sgd_r = _time(sgd.step, reps)

    msgd = MomentumSGD(flat, lr=1e-4, momentum=0.9, nesterov=True)
    msgd_s, msgd_r = _time(msgd.step, reps)
    return {
        "sgd_step": _entry(sgd_s, sgd_r, **dim),
        "momentum_sgd_step": _entry(msgd_s, msgd_r, **dim),
    }


def _bench_sasgd_interval(reps: int) -> Dict[str, Dict[str, object]]:
    """One full Alg.-1 aggregation interval (p learners × T local steps) on a
    synthetic quadratic, via the serial reference executor."""
    from ..core.sasgd import SASGDConfig, reference_sasgd
    from ..nn.module import FlatParams

    rng = np.random.default_rng(4)
    dim, p, T = 100_000, 4, 8
    config = SASGDConfig(T=T, p=p, gamma=1e-3, gamma_p=1e-3 / p)
    target = rng.standard_normal(dim)
    x0 = rng.standard_normal(dim)

    flats = []
    grad_fns = []
    for _ in range(p):
        flat = FlatParams(data=x0.copy(), grad=np.zeros(dim), params=[])
        flats.append(flat)

        def grad_fn(step: int, flat=flat) -> None:
            np.subtract(flat.data, target, out=flat.grad)

        grad_fns.append(grad_fn)

    def interval() -> None:
        reference_sasgd(flats, grad_fns, config, n_intervals=1, x0=x0)

    s, r = _time(interval, reps)
    return {
        "sasgd_interval": _entry(
            s, r, dim=dim, p=p, T=T, grads_per_interval=p * T
        )
    }


def _bench_mp_interval(
    reps: int, timeout: float = 60.0
) -> Dict[str, Dict[str, object]]:
    """Per-interval wall time of a real SASGD run on the mp backend.

    Trains a unit-scale CIFAR SASGD end-to-end with 2 worker processes over
    shared-memory allreduce and reports seconds per aggregation interval —
    the number the sim backend can only model.  Skipped (empty dict) where
    fork is unavailable.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return {}
    from ..algos import SASGDOptions, SASGDTrainer, TrainerConfig
    from ..algos.problems import cifar_problem
    from ..runtime import MPBackend

    p, T = 2, 4

    def one_run() -> int:
        problem = cifar_problem(scale="unit", seed=5)
        config = TrainerConfig(p=p, epochs=1, batch_size=8, lr=0.02, seed=5)
        trainer = SASGDTrainer(
            problem, config, SASGDOptions(T=T), backend=MPBackend(timeout=timeout)
        )
        trainer.train()
        return trainer.n_intervals

    n_intervals = one_run()  # warm-up: imports, page cache, fork machinery
    s, r = _time(one_run, reps)
    per_interval = s / max(1, n_intervals)
    return {
        "sasgd_interval_mp_backend": _entry(
            per_interval, r, p=p, T=T, intervals=n_intervals, scale="unit"
        )
    }


def _bench_net_roundtrips(
    reps: int, timeout: float = 30.0
) -> Dict[str, Dict[str, object]]:
    """Latency of the net backend's two wire primitives on loopback TCP.

    ``net_allreduce_roundtrip`` is one full chunked ring allreduce of a
    model-sized float32 vector between two real processes (the framed
    protocol end to end: reduce-scatter + allgather, 2 hops each).
    ``net_ps_push_pull`` is one push + one pull against a live PS shard
    process — the per-step cost every Downpour/EAMSGD learner pays.
    Skipped (empty dict) where fork is unavailable.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return {}
    from ..net.backend import NetCollective, NetParameterServer
    from ..net.cluster import allocate_loopback, close_all

    dim = 65_536  # ~256 KB of float32, the bench CIFAR model's order
    ctx = multiprocessing.get_context("fork")
    out: Dict[str, Dict[str, object]] = {}

    # -- ring allreduce: parent is rank 0, a forked peer is rank 1 ---------
    spec, listeners = allocate_loopback(p=2)
    coll = NetCollective(p=2, timeout=timeout)
    coll.install(spec, {0: listeners["worker0"], 1: listeners["worker1"]})

    def peer_main() -> None:
        arr = np.ones(dim, dtype=np.float32)
        try:
            while True:  # keep answering until the parent tears the ring down
                coll._allreduce(1, arr)
        except BaseException:
            os._exit(0)

    peer = ctx.Process(target=peer_main, name="repro-bench-peer", daemon=True)
    peer.start()
    try:
        mine = np.ones(dim, dtype=np.float32)
        ar_s, ar_r = _time(lambda: coll._allreduce(0, mine), reps)
        out["net_allreduce_roundtrip"] = _entry(ar_s, ar_r, dim=dim, p=2)
    finally:
        coll.teardown_rank()
        peer.join(timeout=10.0)
        if peer.is_alive():  # pragma: no cover - defensive
            peer.terminate()
        close_all(listeners)

    # -- PS push/pull: one live shard process, one client ------------------
    spec, listeners = allocate_loopback(p=0, n_shards=1)
    ps = NetParameterServer(
        ctx, p=1, size=dim, n_shards=1, learning_rate=0.01,
        dtype=np.float32, timeout=timeout,
    )
    ps.start(spec.ps, listeners)
    try:
        client = ps.client(0)
        grad = np.ones(dim, dtype=np.float32)

        def push_pull() -> None:
            client._push(grad)
            client._pull()

        pp_s, pp_r = _time(push_pull, reps)
        out["net_ps_push_pull"] = _entry(pp_s, pp_r, dim=dim, n_shards=1)
    finally:
        ps.shutdown()
        close_all(listeners)
    return out


def _bench_engine(reps: int) -> Dict[str, Dict[str, object]]:
    """Event throughput of the batched calendar vs the verbatim legacy engine.

    The workload is the large-p hot path: ``procs`` lockstep processes each
    yielding ``rounds`` constant delays, so every timestamp resumes the whole
    cohort — one bucket drain per wave on the batched engine, one heap
    pop/push per process on the legacy one.
    """
    from ..sim.engine import Delay, Engine
    from ..sim.reference import LegacyDelay, LegacyEngine

    procs, rounds = 512, 25
    events = procs * (rounds + 1)  # +1 for each spawn's initial resume

    def batched() -> None:
        eng = Engine()

        def proc():
            for _ in range(rounds):
                yield Delay(1.0)

        for _ in range(procs):
            eng.spawn(proc())
        eng.run()

    def legacy() -> None:
        eng = LegacyEngine()

        def proc():
            for _ in range(rounds):
                yield LegacyDelay(1.0)

        for _ in range(procs):
            eng.spawn(proc())
        eng.run()

    new_s, new_r = _time(batched, reps)
    old_s, old_r = _time(legacy, reps)
    extra = {"processes": procs, "rounds": rounds, "events": events}
    return {
        "engine_event_throughput": _entry(
            new_s, new_r, events_per_sec=round(events / new_s), **extra
        ),
        "engine_event_throughput_legacy": _entry(
            old_s, old_r, events_per_sec=round(events / old_s), **extra
        ),
    }


def _bench_fabric(reps: int) -> Dict[str, Dict[str, object]]:
    """Message rate of per-message transfers vs one vectorised wave.

    The same parameter-server star wave — every leaf GPU sending to the host
    under contention — costed both ways: individually simulated transfers
    (engine events, link resources) vs a :class:`FastFabric` wave (NumPy
    array arithmetic, identical counters).
    """
    from ..cluster.topology import build_binary_tree_topology
    from ..comm.fabric import Fabric
    from ..comm.fastfabric import FastFabric
    from ..sim.engine import Engine

    n_leaves, repeats = 64, 4
    topo = build_binary_tree_topology(n_leaves=n_leaves)
    gpus = [f"gpu{i}" for i in range(n_leaves)]
    messages = n_leaves * repeats

    def per_message() -> None:
        eng = Engine()
        fab = Fabric(eng, topo, contention=True)
        for i, node in enumerate(gpus):
            fab.attach(f"l{i}", node)
        fab.attach("srv", "host")
        for r in range(repeats):
            for i in range(n_leaves):
                eng.spawn(fab.lookup(f"l{i}").send("srv", ("t", r, i), None, nbytes=1e6))
            eng.run()

    pairs = [(node, "host") for node in gpus]
    eng_v = Engine()
    fast = FastFabric(Fabric(eng_v, topo, contention=True))
    fast.plan(pairs)  # steady state: route planning amortises across waves

    def vectorised() -> None:
        for _ in range(repeats):
            fast.wave_span(pairs, 1e6)

    msg_s, msg_r = _time(per_message, reps)
    vec_s, vec_r = _time(vectorised, reps)
    extra = {"messages": messages, "n_leaves": n_leaves}
    return {
        "fabric_message_rate": _entry(
            msg_s, msg_r, messages_per_sec=round(messages / msg_s), **extra
        ),
        "fabric_wave_rate": _entry(
            vec_s, vec_r, messages_per_sec=round(messages / vec_s), **extra
        ),
    }


def _bench_experiment() -> Dict[str, Dict[str, object]]:
    """End-to-end wall time for one small figure experiment (unit scale).

    Declared as a :class:`~repro.spec.ScenarioSpec` and compiled through
    :func:`~repro.spec.compile_scenario` so the bench times the same
    spec-driven path that ``repro run`` and the grid runner exercise.
    """
    from ..spec import ScenarioSpec, compile_scenario

    kwargs = dict(p_values=(1, 2), epochs=1, seed=5, eval_every=1, scale="unit")
    plan = compile_scenario(ScenarioSpec(experiment="fig2", params=kwargs))
    t0 = time.perf_counter()
    result = plan.execute(jobs=1)
    seconds = time.perf_counter() - t0
    return {
        "experiment_fig2_unit": _entry(
            seconds, 1, rows=len(result.rows), kwargs={k: list(v) if isinstance(v, tuple) else v for k, v in kwargs.items()}
        )
    }


# --------------------------------------------------------------------------
# suite driver, serialisation, regression check
# --------------------------------------------------------------------------


def run_benchmarks(
    quick: bool = False,
    include_experiment: bool = True,
    mp_timeout: float = 60.0,
    name_filter: Optional[str] = None,
) -> Dict[str, object]:
    """Run the full suite; returns the BENCH document (a plain dict).

    ``name_filter`` (a substring) restricts the suite to matching benchmark
    names — groups with no matching entry are skipped entirely, so
    ``repro bench --filter engine`` times only the simulation engine.
    """
    from ..obs.manifest import git_revision

    reps = 5 if quick else 20
    benches: Dict[str, Dict[str, object]] = {}

    def want(*names: str) -> bool:
        return name_filter is None or any(name_filter in n for n in names)

    if want("conv2d_forward", "conv2d_forward_backward", "conv2d_forward_backward_legacy"):
        benches.update(_bench_conv2d(reps))
    if want("im2col_plan", "col2im_plan"):
        benches.update(_bench_im2col(reps))
    if want("temporal_conv_forward_backward", "temporal_conv_forward_backward_legacy"):
        benches.update(_bench_temporal(reps))
    if want("sgd_step", "momentum_sgd_step"):
        benches.update(_bench_sgd(reps))
    if want("sasgd_interval"):
        benches.update(_bench_sasgd_interval(max(3, reps // 2)))
    if want("engine_event_throughput", "engine_event_throughput_legacy"):
        benches.update(_bench_engine(max(3, reps // 2)))
    if want("fabric_message_rate", "fabric_wave_rate"):
        benches.update(_bench_fabric(max(3, reps // 2)))
    if include_experiment:
        if want("sasgd_interval_mp_backend"):
            benches.update(_bench_mp_interval(2 if quick else 3, timeout=mp_timeout))
        if want("net_allreduce_roundtrip", "net_ps_push_pull"):
            benches.update(_bench_net_roundtrips(max(5, reps), timeout=mp_timeout))
        if want("experiment_fig2_unit"):
            benches.update(_bench_experiment())
    if name_filter is not None:
        benches = {k: v for k, v in benches.items() if name_filter in k}

    derived: Dict[str, float] = {}

    def ratio(slow: str, fast: str) -> Optional[float]:
        a, b = benches.get(slow), benches.get(fast)
        if not a or not b or not b["seconds"]:
            return None
        return float(a["seconds"]) / float(b["seconds"])

    r = ratio("conv2d_forward_backward_legacy", "conv2d_forward_backward")
    if r is not None:
        derived["conv2d_speedup_vs_legacy"] = round(r, 3)
    r = ratio(
        "temporal_conv_forward_backward_legacy", "temporal_conv_forward_backward"
    )
    if r is not None:
        derived["temporal_speedup_vs_legacy"] = round(r, 3)
    r = ratio("engine_event_throughput_legacy", "engine_event_throughput")
    if r is not None:
        derived["engine_speedup_vs_legacy"] = round(r, 3)
    r = ratio("fabric_message_rate", "fabric_wave_rate")
    if r is not None:
        derived["fabric_wave_speedup_vs_message"] = round(r, 3)

    return {
        "schema": BENCH_SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "benches": benches,
        "derived": derived,
    }


def default_bench_path(doc: Dict[str, object]) -> Path:
    rev = doc.get("git_rev") or "unknown"
    return Path(f"BENCH_{str(rev)[:12]}.json")


def save_bench(doc: Dict[str, object], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Union[str, Path]) -> Dict[str, object]:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    return doc


#: Minimum derived speedups a BENCH document must hold.  These are the
#: "honest vs the code this PR replaced" gates: the batched engine must stay
#: ≥ 5× the verbatim legacy engine on the lockstep event storm.  Checked
#: only when the document actually contains the derived entry, so filtered
#: or historical documents pass untouched.
DERIVED_FLOORS: Dict[str, float] = {
    "engine_speedup_vs_legacy": 5.0,
}


def compare_to_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 2.0,
    derived_floors: Optional[Dict[str, float]] = None,
) -> Tuple[bool, List[str]]:
    """Flag benches where current is more than ``threshold``× the baseline.

    Only benchmarks present in both documents are compared; the end-to-end
    experiment bench is included like any other.  Derived speedups in the
    *current* document are additionally held to ``derived_floors`` (default
    :data:`DERIVED_FLOORS`).  Returns ``(ok, messages)`` where messages
    describe every comparison (regressions prefixed FAIL).
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    cur = current.get("benches", {})
    base = baseline.get("benches", {})
    ok = True
    messages: List[str] = []
    for name in sorted(set(cur) & set(base)):
        c, b = float(cur[name]["seconds"]), float(base[name]["seconds"])
        if b <= 0:
            continue
        rel = c / b
        if rel > threshold:
            ok = False
            messages.append(
                f"FAIL {name}: {c * 1e3:.3f} ms vs baseline {b * 1e3:.3f} ms "
                f"({rel:.2f}x > {threshold:.2f}x)"
            )
        else:
            messages.append(
                f"ok   {name}: {c * 1e3:.3f} ms vs baseline {b * 1e3:.3f} ms ({rel:.2f}x)"
            )
    if not messages:
        ok = False
        messages.append("FAIL no common benchmarks between current and baseline")
    floors = DERIVED_FLOORS if derived_floors is None else derived_floors
    derived = current.get("derived", {}) or {}
    for name, floor in sorted(floors.items()):
        if name not in derived:
            continue
        value = float(derived[name])
        if value < floor:
            ok = False
            messages.append(f"FAIL {name}: {value:.2f}x < required {floor:.2f}x")
        else:
            messages.append(f"ok   {name}: {value:.2f}x >= {floor:.2f}x")
    return ok, messages


def format_bench(doc: Dict[str, object]) -> str:
    lines = [
        f"bench @ {doc.get('git_rev') or '(no rev)'}  "
        f"python {doc.get('python')}  numpy {doc.get('numpy')}  "
        f"cores {doc.get('cpu_count')}"
        + ("  [quick]" if doc.get("quick") else "")
    ]
    lines.append(f"{'benchmark':<40} {'ms/op':>10} {'ops/sec':>12}")
    for name, entry in sorted(doc.get("benches", {}).items()):
        lines.append(
            f"{name:<40} {float(entry['seconds']) * 1e3:>10.3f} "
            f"{float(entry['ops_per_sec']):>12.2f}"
        )
    derived = doc.get("derived") or {}
    for name, value in sorted(derived.items()):
        lines.append(f"{name:<40} {value:>10.2f}x")
    return "\n".join(lines)
