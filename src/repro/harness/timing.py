"""Paper-scale epoch-time simulation (timing-only mode).

The epoch-time figures (1, 4, 5, 6) depend on message sizes, FLOP counts and
the schedule — not on gradient values — so they are regenerated with the real
communication substrate (fabric, collectives, parameter server, contention)
but byte-count payloads and no NumPy math.  That lets the full Table I/II
models and paper dataset sizes run in milliseconds of wall time.

Each ``simulate_*`` function plays ``epochs`` epochs of the algorithm's
communication/compute schedule for p learners and returns the steady-state
per-epoch timing breakdown (averaged over learners and epochs, skipping the
first epoch if more than one is run, to exclude start-up transients).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..cluster.machine import Machine
from ..comm.collectives import allreduce, broadcast
from ..comm.fabric import Fabric
from ..comm.fastfabric import FastFabric
from ..nn.models import ModelInfo
from ..obs.runtime import active as _obs_active
from ..ps.server import PSClient, ShardLayout, ShardedParameterServer, _REQ_NBYTES
from ..sim import Delay
from .calibration import CalibrationProfile, PAPER_PROFILE, calibrated_machine

__all__ = ["TimingWorkload", "TimingResult", "simulate_epoch_time"]


@dataclass(frozen=True)
class TimingWorkload:
    """Sizes that drive the schedule: parameters, FLOPs, samples, minibatch."""

    name: str
    param_bytes: float
    train_flops_per_example: float
    batch_size: int
    n_train: int

    @classmethod
    def from_model_info(cls, info: ModelInfo, n_train: int) -> "TimingWorkload":
        return cls(
            name=info.name,
            param_bytes=info.param_bytes,
            train_flops_per_example=info.flops_train_per_example,
            batch_size=info.default_minibatch,
            n_train=n_train,
        )

    def steps_per_learner_per_epoch(self, p: int) -> int:
        return max(1, math.ceil(self.n_train / (p * self.batch_size)))


@dataclass
class TimingResult:
    """Steady-state per-epoch timing for one configuration."""

    algorithm: str
    workload: str
    p: int
    T: int
    epoch_seconds: float
    compute_seconds: float
    comm_seconds: float
    total_bytes_per_epoch: float

    @property
    def comm_fraction(self) -> float:
        busy = self.compute_seconds + self.comm_seconds
        return self.comm_seconds / busy if busy > 0 else 0.0


def _learner_sasgd(
    trainer_ctx: dict, lid: int
) -> Generator:
    machine: Machine = trainer_ctx["machine"]
    wl: TimingWorkload = trainer_ctx["workload"]
    names: List[str] = trainer_ctx["names"]
    eps = trainer_ctx["endpoints"]
    T: int = trainer_ctx["T"]
    p = len(names)
    name = names[lid]
    tracer = machine.tracer
    device = machine.devices[trainer_ctx["placement"][lid]]
    residency = trainer_ctx["residency"][lid]
    batch_flops = wl.train_flops_per_example * wl.batch_size
    yield from tracer.timed(
        name,
        "comm",
        broadcast(eps[lid], names, lid, None, nbytes=wl.param_bytes, ctx="init"),
    )
    steps = wl.steps_per_learner_per_epoch(p) * trainer_ctx["epochs"]
    for step in range(1, steps + 1):
        tracer.begin(name, "compute")
        yield Delay(device.compute_seconds(batch_flops) * residency)
        tracer.end(name, "compute")
        if step % T == 0 or step == steps:
            yield from tracer.timed(
                name,
                "comm",
                allreduce(
                    eps[lid],
                    names,
                    lid,
                    None,
                    nbytes=wl.param_bytes,
                    ctx=("agg", step),
                    algorithm=trainer_ctx.get(
                        "allreduce_algorithm", "recursive_doubling"
                    ),
                    groups=trainer_ctx.get("allreduce_groups"),
                ),
            )


def _wave(trainer_ctx: dict, lid: int, key, span_fn) -> Generator:
    """Rendezvous all p learners, then advance the clock by one wave span.

    The vector comm mode's synchronisation primitive: every learner's "comm"
    span runs from its own arrival (so compute jitter still staggers the
    rendezvous) to the common wave end; the last arrival computes the span —
    accounting the wave's traffic exactly once — and releases everyone.
    """
    machine: Machine = trainer_ctx["machine"]
    name = trainer_ctx["names"][lid]
    engine = machine.engine
    tracer = machine.tracer
    gates: Dict = trainer_ctx["gates"]
    gate = gates.get(key)
    if gate is None:
        gate = gates[key] = {"n": 0, "event": engine.event(f"wave:{key}")}
    gate["n"] += 1
    tracer.begin(name, "comm")
    if gate["n"] == len(trainer_ctx["names"]):
        yield Delay(span_fn())
        gate["event"].trigger()
    else:
        yield gate["event"]
    tracer.end(name, "comm")


def _learner_sasgd_vector(trainer_ctx: dict, lid: int) -> Generator:
    """SASGD learner in vector comm mode: waves instead of per-message sends."""
    machine: Machine = trainer_ctx["machine"]
    wl: TimingWorkload = trainer_ctx["workload"]
    T: int = trainer_ctx["T"]
    p = len(trainer_ctx["names"])
    fast: FastFabric = trainer_ctx["fast"]
    nodes: List[str] = trainer_ctx["placement"]
    algorithm = trainer_ctx.get("allreduce_algorithm", "recursive_doubling")
    groups = trainer_ctx.get("allreduce_groups")
    device = machine.devices[nodes[lid]]
    residency = trainer_ctx["residency"][lid]
    tracer = machine.tracer
    name = trainer_ctx["names"][lid]
    batch_flops = wl.train_flops_per_example * wl.batch_size
    yield from _wave(
        trainer_ctx,
        lid,
        "init",
        lambda: fast.broadcast_span(nodes, wl.param_bytes),
    )
    steps = wl.steps_per_learner_per_epoch(p) * trainer_ctx["epochs"]
    for step in range(1, steps + 1):
        tracer.begin(name, "compute")
        yield Delay(device.compute_seconds(batch_flops) * residency)
        tracer.end(name, "compute")
        if step % T == 0 or step == steps:
            yield from _wave(
                trainer_ctx,
                lid,
                ("agg", step),
                lambda: fast.allreduce_span(
                    nodes, wl.param_bytes, algorithm=algorithm, groups=groups
                ),
            )


def _ps_volley_span(trainer_ctx: dict, kind: str) -> float:
    """Span of one synchronised push/pull/elastic volley against the shards.

    Byte sizes and service costs mirror :mod:`repro.ps.server` exactly:
    requests carry the shard's parameter slice (push/elastic) or a small
    header (pull); replies are the mirror image; each request costs the
    shard's host device ``cost_scale × apply_seconds`` — drawn per request so
    the jitter stream advances just like the per-message server's.
    """
    machine: Machine = trainer_ctx["machine"]
    fast: FastFabric = trainer_ctx["fast"]
    layout: ShardLayout = trainer_ctx["ps_layout"]
    shard_hosts: List[str] = trainer_ctx["ps_shard_hosts"]
    flops_per_param: float = trainer_ctx["ps_apply_flops_per_param"]
    p = len(trainer_ctx["names"])
    cost_scale = {"push": 1.0, "pull": 0.5, "elastic": 1.5}[kind]
    slice_bytes = [
        layout.slice_bytes(sid, 4) for sid in range(layout.n_shards)
    ]
    request_bytes = slice_bytes if kind in ("push", "elastic") else [_REQ_NBYTES] * layout.n_shards
    reply_bytes = slice_bytes if kind in ("pull", "elastic") else [_REQ_NBYTES] * layout.n_shards
    apply_seconds = []
    for sid, (lo, hi) in enumerate(layout.bounds):
        dev = machine.devices[shard_hosts[sid]]
        apply_seconds.append(
            sum(
                cost_scale * dev.compute_seconds(flops_per_param * (hi - lo))
                for _ in range(p)
            )
        )
    return fast.ps_round_trip_span(
        trainer_ctx["placement"], shard_hosts, request_bytes, reply_bytes, apply_seconds
    )


def _learner_ps_vector(trainer_ctx: dict, lid: int, elastic: bool) -> Generator:
    """Downpour/EAMSGD learner in vector comm mode.

    Learners rendezvous per aggregation index and the whole p-client
    push+pull (or elastic) exchange is costed as synchronised volleys — a
    bulk-synchronous approximation of the asynchronous server documented in
    DESIGN §11, used only by the large-p scaling experiments.
    """
    machine: Machine = trainer_ctx["machine"]
    wl: TimingWorkload = trainer_ctx["workload"]
    T: int = trainer_ctx["T"]
    p = len(trainer_ctx["names"])
    device = machine.devices[trainer_ctx["placement"][lid]]
    residency = trainer_ctx["residency"][lid]
    tracer = machine.tracer
    name = trainer_ctx["names"][lid]
    batch_flops = wl.train_flops_per_example * wl.batch_size
    yield from _wave(
        trainer_ctx, lid, "init", lambda: _ps_volley_span(trainer_ctx, "pull")
    )
    steps = wl.steps_per_learner_per_epoch(p) * trainer_ctx["epochs"]
    for step in range(1, steps + 1):
        tracer.begin(name, "compute")
        yield Delay(device.compute_seconds(batch_flops) * residency)
        tracer.end(name, "compute")
        if step % T == 0 or step == steps:
            if elastic:
                yield from _wave(
                    trainer_ctx,
                    lid,
                    ("agg", step),
                    lambda: _ps_volley_span(trainer_ctx, "elastic"),
                )
            else:
                yield from _wave(
                    trainer_ctx,
                    lid,
                    ("agg", step),
                    lambda: _ps_volley_span(trainer_ctx, "push")
                    + _ps_volley_span(trainer_ctx, "pull"),
                )


def _learner_ps(trainer_ctx: dict, lid: int, elastic: bool) -> Generator:
    machine: Machine = trainer_ctx["machine"]
    wl: TimingWorkload = trainer_ctx["workload"]
    names: List[str] = trainer_ctx["names"]
    T: int = trainer_ctx["T"]
    p = len(names)
    name = names[lid]
    tracer = machine.tracer
    device = machine.devices[trainer_ctx["placement"][lid]]
    residency = trainer_ctx["residency"][lid]
    client: PSClient = trainer_ctx["clients"][lid]
    batch_flops = wl.train_flops_per_example * wl.batch_size
    yield from tracer.timed(name, "comm", client.pull())
    steps = wl.steps_per_learner_per_epoch(p) * trainer_ctx["epochs"]
    for step in range(1, steps + 1):
        tracer.begin(name, "compute")
        yield Delay(device.compute_seconds(batch_flops) * residency)
        tracer.end(name, "compute")
        if step % T == 0 or step == steps:
            if elastic:
                yield from tracer.timed(name, "comm", client.elastic(None, 0.0))
            else:

                def round_trip() -> Generator:
                    yield from client.push(None)
                    yield from client.pull()

                yield from tracer.timed(name, "comm", round_trip())


def simulate_epoch_time(
    algorithm: str,
    workload: TimingWorkload,
    p: int,
    T: int,
    epochs: int = 2,
    profile: CalibrationProfile = PAPER_PROFILE,
    n_shards: int = 2,
    allreduce_algorithm: str = "recursive_doubling",
    seed: int = 0,
    machine: Optional[Machine] = None,
    comm_mode: str = "message",
    allreduce_groups: Optional[List[List[int]]] = None,
    ps_hosts: Optional[List[str]] = None,
) -> TimingResult:
    """Simulate ``epochs`` epochs of ``algorithm`` and return epoch timing.

    ``algorithm`` is one of "sgd" (p must be 1), "sasgd", "downpour",
    "eamsgd".  Epoch time is span / epochs; compute/comm are per-learner
    means over the full run.  Pass ``machine`` to run on something other
    than the calibrated single-node testbed (e.g. a
    :func:`~repro.cluster.power8_cluster_spec` multi-node machine).

    ``comm_mode``:

    * ``"message"`` (default) — every transfer is simulated individually
      through the contended fabric; the reference-fidelity mode all golden
      pins run in.
    * ``"vector"`` — communication is costed per *wave* via
      :class:`~repro.comm.fastfabric.FastFabric`: O(p) engine events per
      aggregation instead of O(p²), which is what makes p = 128–1024 cells
      feasible.  Byte accounting matches the message mode exactly; spans are
      exact for symmetric waves (see DESIGN §11).

    ``allreduce_groups`` selects the two-level hierarchy for
    ``allreduce_algorithm="hierarchical"``; ``ps_hosts`` spreads PS shards
    over several host nodes (defaults to the machine's single host).
    """
    if algorithm == "sgd" and p != 1:
        raise ValueError("sgd timing requires p=1")
    if comm_mode not in ("message", "vector"):
        raise ValueError(f"unknown comm_mode {comm_mode!r}")
    if machine is None:
        machine = calibrated_machine(profile, seed=seed)
    fabric = Fabric(machine.engine, machine.topology, machine.tracer, contention=True)
    placement = machine.place_learners(p)
    res_map = machine.residency(placement)
    residency = [res_map[d] for d in placement]
    names = [f"learner{i}" for i in range(p)]
    vector = comm_mode == "vector"
    endpoints = (
        []
        if vector
        else [fabric.attach(names[i], placement[i]) for i in range(p)]
    )
    ctx = dict(
        machine=machine,
        workload=workload,
        names=names,
        endpoints=endpoints,
        placement=placement,
        residency=residency,
        T=T,
        epochs=epochs,
        allreduce_algorithm=allreduce_algorithm,
        allreduce_groups=allreduce_groups,
    )
    if vector:
        ctx["fast"] = FastFabric(fabric)
        ctx["gates"] = {}
    if algorithm in ("downpour", "eamsgd"):
        n_params = max(int(workload.param_bytes // 4), n_shards)
        if vector:
            layout = ShardLayout.even(n_params, n_shards)
            hosts = ps_hosts if ps_hosts is not None else [machine.host]
            if hosts[0] is None:
                raise ValueError("machine has no host to run the parameter server on")
            ctx["ps_layout"] = layout
            ctx["ps_shard_hosts"] = [
                hosts[sid % len(hosts)] for sid in range(n_shards)
            ]
            ctx["ps_apply_flops_per_param"] = profile.ps_apply_flops_per_param
            procs = [
                machine.engine.spawn(
                    _learner_ps_vector(ctx, lid, elastic=(algorithm == "eamsgd")),
                    name=names[lid],
                )
                for lid in range(p)
            ]
        else:
            server = ShardedParameterServer(
                machine,
                fabric,
                size=n_params,
                n_shards=n_shards,
                timing_only=True,
                apply_flops_per_param=profile.ps_apply_flops_per_param,
                hosts=ps_hosts,
            )
            ctx["clients"] = [PSClient(server, ep) for ep in endpoints]
            procs = [
                machine.engine.spawn(
                    _learner_ps(ctx, lid, elastic=(algorithm == "eamsgd")),
                    name=names[lid],
                )
                for lid in range(p)
            ]
    elif algorithm in ("sasgd", "sgd"):
        learner = _learner_sasgd_vector if vector else _learner_sasgd
        procs = [
            machine.engine.spawn(learner(ctx, lid), name=names[lid])
            for lid in range(p)
        ]
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    machine.engine.run()
    for proc in procs:
        if not proc.finished:
            raise RuntimeError(f"{proc.name} deadlocked")
    span = machine.engine.now
    bd = machine.tracer.mean_breakdown(names)
    sess = _obs_active()
    if sess is not None:
        labels = dict(algo=algorithm, workload=workload.name, p=p, T=T)
        fabric.publish_metrics(sess.registry, **labels)
        stats = machine.engine.stats()
        sess.registry.counter("engine.events_total", **labels).inc(
            stats["events_processed"]
        )
        sess.registry.gauge("engine.max_heap_depth", **labels).set(
            stats["max_heap_depth"]
        )
        sess.registry.gauge("timing.epoch_seconds", **labels).set(span / epochs)
        sess.registry.gauge("timing.comm_seconds", **labels).set(
            bd.comm_seconds / epochs
        )
        sess.registry.gauge("timing.compute_seconds", **labels).set(
            bd.compute_seconds / epochs
        )
        sess.add_run(
            f"{algorithm} {workload.name} p={p} T={T}",
            machine.tracer.spans,
            fabric.message_log,
            span,
        )
    return TimingResult(
        algorithm=algorithm,
        workload=workload.name,
        p=p,
        T=T,
        epoch_seconds=span / epochs,
        compute_seconds=bd.compute_seconds / epochs,
        comm_seconds=bd.comm_seconds / epochs,
        total_bytes_per_epoch=fabric.total_bytes / epochs,
    )
