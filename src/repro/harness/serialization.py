"""Persistence for experiment outputs and model parameters.

Experiment results serialise to JSON (the harness's exchange format: rerun a
figure, diff it against a stored run); flat parameter vectors save to ``.npz``
with enough metadata to refuse a mismatched restore.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..nn.module import FlatParams
from .experiments import ExperimentResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_params",
    "load_params",
]

PathLike = Union[str, Path]


def result_to_dict(result: ExperimentResult) -> dict:
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "paper_claim": result.paper_claim,
        "rows": [
            {k: (list(v) if isinstance(v, tuple) else v) for k, v in row.items()}
            for row in result.rows
        ],
        "series": {name: [[float(x), float(y)] for x, y in pts] for name, pts in result.series.items()},
        "notes": result.notes,
    }


def result_from_dict(data: dict) -> ExperimentResult:
    return ExperimentResult(
        exp_id=data["exp_id"],
        title=data["title"],
        paper_claim=data["paper_claim"],
        rows=[
            {k: (tuple(v) if isinstance(v, list) else v) for k, v in row.items()}
            for row in data["rows"]
        ],
        series={
            name: [(float(x), float(y)) for x, y in pts]
            for name, pts in data["series"].items()
        },
        notes=data.get("notes", ""),
    )


def save_result(result: ExperimentResult, path: PathLike) -> None:
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: PathLike) -> ExperimentResult:
    return result_from_dict(json.loads(Path(path).read_text()))


def save_params(flat: FlatParams, path: PathLike, **metadata) -> None:
    """Save the flat parameter vector plus free-form string metadata."""
    meta = {str(k): str(v) for k, v in metadata.items()}
    np.savez(
        Path(path),
        data=flat.data,
        size=np.array([flat.size]),
        **{f"meta_{k}": np.array(v) for k, v in meta.items()},
    )


def load_params(flat: FlatParams, path: PathLike) -> dict:
    """Restore parameters in place; returns the stored metadata.

    Refuses a size or dtype mismatch rather than silently truncating.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        data = archive["data"]
        if data.shape != flat.data.shape:
            raise ValueError(
                f"parameter count mismatch: file has {data.shape}, model has "
                f"{flat.data.shape}"
            )
        if data.dtype != flat.data.dtype:
            raise ValueError(
                f"dtype mismatch: file has {data.dtype}, model has {flat.data.dtype}"
            )
        flat.set_data(data)
        return {
            key[5:]: str(archive[key])
            for key in archive.files
            if key.startswith("meta_")
        }
