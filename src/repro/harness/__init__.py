"""Experiment harness: calibration, timing simulation, registry, reporting."""

from .calibration import PAPER_PROFILE, CalibrationProfile, calibrated_machine
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    list_experiments,
    run_experiment,
)
from .report import format_result, format_series, format_table
from .serialization import (
    load_params,
    load_result,
    result_from_dict,
    result_to_dict,
    save_params,
    save_result,
)
from .timing import TimingResult, TimingWorkload, simulate_epoch_time

__all__ = [
    "CalibrationProfile",
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_PROFILE",
    "TimingResult",
    "TimingWorkload",
    "calibrated_machine",
    "format_result",
    "format_series",
    "format_table",
    "list_experiments",
    "load_params",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_params",
    "save_result",
    "run_experiment",
    "simulate_epoch_time",
]
