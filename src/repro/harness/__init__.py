"""Experiment harness: calibration, timing simulation, registry, reporting,
parallel grid execution, and benchmark baselines."""

from .bench import compare_to_baseline, load_bench, run_benchmarks, save_bench
from .calibration import PAPER_PROFILE, CalibrationProfile, calibrated_machine
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    list_experiments,
    run_experiment,
)
from .parallel import (
    ResultCache,
    config_key,
    expand_grid,
    iter_grid,
    merge_results,
    run_experiment_parallel,
    run_grid,
)
from .report import format_result, format_series, format_table
from .serialization import (
    load_params,
    load_result,
    result_from_dict,
    result_to_dict,
    save_params,
    save_result,
)
from .timing import TimingResult, TimingWorkload, simulate_epoch_time

__all__ = [
    "CalibrationProfile",
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_PROFILE",
    "ResultCache",
    "TimingResult",
    "TimingWorkload",
    "calibrated_machine",
    "compare_to_baseline",
    "config_key",
    "expand_grid",
    "format_result",
    "format_series",
    "format_table",
    "iter_grid",
    "list_experiments",
    "load_bench",
    "load_params",
    "load_result",
    "merge_results",
    "result_from_dict",
    "result_to_dict",
    "run_benchmarks",
    "run_experiment",
    "run_experiment_parallel",
    "run_grid",
    "save_bench",
    "save_params",
    "save_result",
    "simulate_epoch_time",
]
